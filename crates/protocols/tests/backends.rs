//! Backend agreement: one choreography, three executions.
//!
//! * The socket backend (real TCP over loopback, thread-per-node) must
//!   reproduce the simulator backend's outcome bit for bit on the same
//!   seed — same outputs, rounds, and counters (`msg_bytes` is the wire
//!   length for every ported protocol, so byte counters transfer).
//! * The Monte-Carlo backend must be invariant under the worker thread
//!   count: per-sample RNG streams are keyed by `(seed, sample)`, never
//!   by the executing thread.

use std::process::Command;
use std::time::Duration;

use rand::SeedableRng;
use rsbt_protocols::choreo::{
    consensus_choreo, Backend, BleChoreo, EuclidChoreo, MatchingChoreo, McBackend, RunJob,
    SimBackend, SocketBackend,
};
use rsbt_random::Assignment;
use rsbt_sim::{Model, PortNumbering};

const TIMEOUT: Duration = Duration::from_secs(20);

#[test]
fn socket_backend_agrees_with_simulator_on_ble() {
    let alpha = Assignment::from_group_sizes(&[1, 1, 2]).unwrap();
    let model = Model::Blackboard;
    for seed in 0..4u64 {
        let job = RunJob {
            model: &model,
            alpha: &alpha,
            max_rounds: 128,
            seed,
        };
        let sim = SimBackend.run(&BleChoreo, &job).unwrap().into_run();
        let net = SocketBackend::in_process(TIMEOUT)
            .run(&BleChoreo, &job)
            .unwrap()
            .into_run();
        assert!(sim.completed, "seed {seed}: election should decide");
        assert_eq!(sim.outputs, net.outputs, "seed {seed}");
        assert_eq!(sim.rounds, net.rounds, "seed {seed}");
        assert_eq!(sim.completed, net.completed, "seed {seed}");
        assert_eq!(sim.stats, net.stats, "seed {seed}");
    }
}

#[test]
fn socket_backend_agrees_with_simulator_on_euclid() {
    let alpha = Assignment::from_group_sizes(&[2, 3]).unwrap();
    let mut prng = rand::rngs::StdRng::seed_from_u64(5);
    let model = Model::MessagePassing(PortNumbering::random(5, &mut prng));
    for seed in 0..3u64 {
        let job = RunJob {
            model: &model,
            alpha: &alpha,
            max_rounds: 6000,
            seed,
        };
        let choreo = EuclidChoreo { k: 2 };
        let sim = SimBackend.run(&choreo, &job).unwrap().into_run();
        let net = SocketBackend::in_process(TIMEOUT)
            .run(&choreo, &job)
            .unwrap()
            .into_run();
        assert!(sim.completed, "seed {seed}: election should decide");
        assert_eq!(sim.outputs, net.outputs, "seed {seed}");
        assert_eq!(sim.rounds, net.rounds, "seed {seed}");
        assert_eq!(sim.stats, net.stats, "seed {seed}");
    }
}

#[test]
fn socket_backend_agrees_with_simulator_on_matching_and_consensus() {
    let alpha = Assignment::from_group_sizes(&[1, 1, 1, 1]).unwrap();
    let model = Model::MessagePassing(PortNumbering::cyclic(4));
    let job = RunJob {
        model: &model,
        alpha: &alpha,
        max_rounds: 256,
        seed: 11,
    };
    let choreo = MatchingChoreo { a: 2, b: 2 };
    let sim = SimBackend.run(&choreo, &job).unwrap().into_run();
    let net = SocketBackend::in_process(TIMEOUT)
        .run(&choreo, &job)
        .unwrap()
        .into_run();
    assert!(sim.completed, "matching should complete");
    assert_eq!(sim.outputs, net.outputs);
    assert_eq!(sim.stats, net.stats);

    let model = Model::Blackboard;
    let job = RunJob {
        model: &model,
        alpha: &alpha,
        max_rounds: 256,
        seed: 13,
    };
    let choreo = consensus_choreo(BleChoreo, vec![9, 4, 9, 6]);
    let sim = SimBackend.run(&choreo, &job).unwrap().into_run();
    let net = SocketBackend::in_process(TIMEOUT)
        .run(&choreo, &job)
        .unwrap()
        .into_run();
    assert!(sim.completed, "consensus should complete");
    assert_eq!(sim.outputs, net.outputs);
    assert_eq!(sim.outputs[0], Some(4), "minimum input wins");
    assert_eq!(sim.stats, net.stats);
}

/// Graceful degradation: spawned workers that die before the handshake
/// are declared crashed, and the backend returns a partial outcome — all
/// outputs `None`, every `crashed` flag set — instead of an error.
#[test]
fn spawn_backend_degrades_when_workers_never_connect() {
    let alpha = Assignment::from_group_sizes(&[1, 1, 2]).unwrap();
    let model = Model::Blackboard;
    let job = RunJob {
        model: &model,
        alpha: &alpha,
        max_rounds: 8,
        seed: 3,
    };
    // `true` exits immediately without ever dialing the coordinator.
    let net = SocketBackend::spawning(Duration::from_millis(200), |_, _| Command::new("true"))
        .run(&BleChoreo, &job)
        .unwrap()
        .into_run();
    assert!(net.crashed.iter().all(|&c| c), "every worker is crashed");
    assert!(net.outputs.iter().all(Option::is_none));
    assert_eq!(net.stats.crashes, 4);
}

/// Kill plans need a process to kill: the in-process launcher refuses.
#[test]
#[should_panic(expected = "kill plans require the Spawn launcher")]
fn in_process_backend_rejects_kill_plans() {
    let alpha = Assignment::from_group_sizes(&[1, 1]).unwrap();
    let model = Model::Blackboard;
    let job = RunJob {
        model: &model,
        alpha: &alpha,
        max_rounds: 4,
        seed: 0,
    };
    let _ = SocketBackend::in_process(TIMEOUT)
        .with_kill(0, 1)
        .run(&BleChoreo, &job);
}

#[test]
fn mc_backend_is_thread_count_invariant() {
    let alpha = Assignment::from_group_sizes(&[1, 3]).unwrap();
    let model = Model::Blackboard;
    let job = RunJob {
        model: &model,
        alpha: &alpha,
        max_rounds: 24,
        seed: 1234,
    };
    let base = McBackend {
        samples: 400,
        threads: 1,
    }
    .run(&BleChoreo, &job)
    .unwrap()
    .into_estimate();
    assert!(base.successes > 0, "some runs must complete");
    assert!(base.ci_lo <= base.p && base.p <= base.ci_hi);
    for threads in [2, 3, 8] {
        let est = McBackend {
            samples: 400,
            threads,
        }
        .run(&BleChoreo, &job)
        .unwrap()
        .into_estimate();
        assert_eq!(base.successes, est.successes, "threads={threads}");
        assert_eq!(
            base.completed_by_round, est.completed_by_round,
            "threads={threads}"
        );
        assert_eq!(base.total_posts, est.total_posts, "threads={threads}");
        assert_eq!(base.total_sends, est.total_sends, "threads={threads}");
        assert_eq!(base.max_msg_bytes, est.max_msg_bytes, "threads={threads}");
        assert_eq!(base.p, est.p, "threads={threads}");
        assert_eq!(
            (base.ci_lo, base.ci_hi),
            (est.ci_lo, est.ci_hi),
            "threads={threads}"
        );
    }
}

#[test]
fn mc_backend_series_is_monotone_and_bounded() {
    let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
    let model = Model::Blackboard;
    let job = RunJob {
        model: &model,
        alpha: &alpha,
        max_rounds: 16,
        seed: 7,
    };
    let est = McBackend {
        samples: 500,
        threads: 4,
    }
    .run(&BleChoreo, &job)
    .unwrap()
    .into_estimate();
    let series = est.series();
    assert_eq!(series.len(), 16);
    for w in series.windows(2) {
        assert!(w[0] <= w[1], "cumulative series must be monotone");
    }
    assert!(series.iter().all(|&p| (0.0..=1.0).contains(&p)));
    let (lo, hi) = est.round_interval(16);
    assert!(lo <= series[15] && series[15] <= hi);
}
