//! Bit-identity of the choreography layer against the legacy hand-rolled
//! nodes.
//!
//! For every ported protocol, the projected machine must produce a
//! [`RunOutcome`] **identical** to the legacy node's — outputs, round
//! count, completion flag, and message counters — under the same RNG
//! stream. The stream is pinned two ways:
//!
//! * exhaustively, over every α-consistent realization with `n ≤ 4`,
//!   `t ≤ 3` (the realization's bits replayed round-major, source-minor —
//!   exactly the runner's draw order — then a deterministic continuation
//!   keyed by the realization index);
//! * statistically, over seeded `StdRng` runs long enough for the
//!   protocols to decide.

use std::fmt::Debug;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rsbt_protocols::choreo::{
    consensus_choreo, BleChoreo, Choreography, DeputyChoreo, EuclidChoreo, KLeaderChoreo,
    MatchingChoreo, WsbChoreo,
};
use rsbt_protocols::consensus::consensus_node;
use rsbt_protocols::matching::CreateMatching;
use rsbt_protocols::{
    BlackboardLeaderElection, EuclidLeaderElection, KLeaderBlackboard, LeaderAndDeputyBlackboard,
    WeakSymmetryBreakingBlackboard,
};
use rsbt_random::Assignment;
use rsbt_sim::runner::{run_nodes, run_nodes_with, Protocol, RunOutcome};
use rsbt_sim::{Model, PortNumbering};

/// Replays the bits of one enumerated realization in the runner's draw
/// order (round-major, source-minor), then continues with a deterministic
/// pseudorandom stream keyed by the realization index so runs terminate.
struct TapeRng {
    bits: Vec<bool>,
    pos: usize,
    cont: StdRng,
}

impl TapeRng {
    /// The tape of the α-consistent realization at tree index `index`
    /// (bit `(t − r)·k + s` of `index` = bit of source `s` in round `r`).
    fn from_tree_index(k: usize, t: usize, index: u64) -> Self {
        let bits = (1..=t)
            .flat_map(|r| (0..k).map(move |s| index >> ((t - r) * k + s) & 1 == 1))
            .collect();
        TapeRng {
            bits,
            pos: 0,
            cont: StdRng::seed_from_u64(index.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }
}

impl RngCore for TapeRng {
    fn next_u64(&mut self) -> u64 {
        match self.bits.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                u64::from(b)
            }
            None => self.cont.next_u64(),
        }
    }
}

/// Runs a choreography through projection + the simulator, mirroring
/// `SimBackend` but with a caller-supplied RNG so tapes can be injected.
fn run_choreo<C: Choreography, R: RngCore>(
    choreo: &C,
    model: &Model,
    alpha: &Assignment,
    max_rounds: usize,
    rng: &mut R,
) -> RunOutcome<<C::Node as Protocol>::Output> {
    let projection = choreo
        .global()
        .project(model, alpha.n())
        .expect("global protocol projects");
    let nodes: Vec<C::Node> = (0..alpha.n())
        .map(|i| choreo.node(i, model, &projection))
        .collect();
    run_nodes_with(model, alpha, max_rounds, nodes, rng, projection.options())
}

fn assert_same<O: PartialEq + Debug>(legacy: &RunOutcome<O>, choreo: &RunOutcome<O>, what: &str) {
    assert_eq!(legacy.outputs, choreo.outputs, "{what}: outputs differ");
    assert_eq!(legacy.rounds, choreo.rounds, "{what}: rounds differ");
    assert_eq!(
        legacy.completed, choreo.completed,
        "{what}: completion differs"
    );
    assert_eq!(legacy.stats, choreo.stats, "{what}: stats differ");
}

#[test]
fn board_elections_match_legacy_over_all_realizations() {
    for n in 1..=4 {
        for alpha in Assignment::iter_profiles(n) {
            let k = alpha.k();
            for t in 1..=3usize {
                for index in 0..1u64 << (k * t) {
                    let mk = |_| TapeRng::from_tree_index(k, t, index);
                    let what = |p: &str| {
                        format!("{p} n={n} sizes={:?} t={t} index={index}", alpha.sources())
                    };

                    let legacy = run_nodes(
                        &Model::Blackboard,
                        &alpha,
                        64,
                        (0..n).map(|_| BlackboardLeaderElection::new()).collect(),
                        &mut mk(()),
                    );
                    let choreo =
                        run_choreo(&BleChoreo, &Model::Blackboard, &alpha, 64, &mut mk(()));
                    assert_same(&legacy, &choreo, &what("ble"));

                    let legacy = run_nodes(
                        &Model::Blackboard,
                        &alpha,
                        64,
                        (0..n)
                            .map(|_| WeakSymmetryBreakingBlackboard::new())
                            .collect(),
                        &mut mk(()),
                    );
                    let choreo =
                        run_choreo(&WsbChoreo, &Model::Blackboard, &alpha, 64, &mut mk(()));
                    assert_same(&legacy, &choreo, &what("wsb"));

                    let legacy = run_nodes(
                        &Model::Blackboard,
                        &alpha,
                        64,
                        (0..n).map(|_| KLeaderBlackboard::new(2)).collect(),
                        &mut mk(()),
                    );
                    let choreo = run_choreo(
                        &KLeaderChoreo { k: 2 },
                        &Model::Blackboard,
                        &alpha,
                        64,
                        &mut mk(()),
                    );
                    assert_same(&legacy, &choreo, &what("k-leader"));

                    let legacy = run_nodes(
                        &Model::Blackboard,
                        &alpha,
                        64,
                        (0..n).map(|_| LeaderAndDeputyBlackboard::new()).collect(),
                        &mut mk(()),
                    );
                    let choreo =
                        run_choreo(&DeputyChoreo, &Model::Blackboard, &alpha, 64, &mut mk(()));
                    assert_same(&legacy, &choreo, &what("deputy"));
                }
            }
        }
    }
}

#[test]
fn euclid_matches_legacy_over_all_realizations_and_port_numberings() {
    for n in 1..=4usize {
        for alpha in Assignment::iter_profiles(n) {
            let k = alpha.k();
            let mut numberings = vec![PortNumbering::cyclic(n)];
            if n > 1 {
                let mut prng = StdRng::seed_from_u64(n as u64);
                numberings.push(PortNumbering::random(n, &mut prng));
            }
            if n == 4 {
                numberings.push(PortNumbering::adversarial(4, 2));
            }
            for ports in numberings {
                let model = Model::MessagePassing(ports);
                for t in 1..=3usize {
                    for index in 0..1u64 << (k * t) {
                        let legacy = run_nodes(
                            &model,
                            &alpha,
                            256,
                            (0..n).map(|_| EuclidLeaderElection::new(k)).collect(),
                            &mut TapeRng::from_tree_index(k, t, index),
                        );
                        let choreo = run_choreo(
                            &EuclidChoreo { k },
                            &model,
                            &alpha,
                            256,
                            &mut TapeRng::from_tree_index(k, t, index),
                        );
                        assert_same(
                            &legacy,
                            &choreo,
                            &format!(
                                "euclid n={n} sizes={:?} t={t} index={index}",
                                alpha.sources()
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Legacy `CreateMatching` node vector for groups A = first `a`, B = next
/// `b`, bystanders after — the same layout `MatchingChoreo` uses.
fn legacy_matching_nodes(a: usize, b: usize, n: usize, model: &Model) -> Vec<CreateMatching> {
    let ports = model.ports().expect("message passing");
    (0..n)
        .map(|i| {
            if i < a {
                let b_ports = (a..a + b)
                    .map(|target| ports.port_towards(i, target))
                    .collect();
                CreateMatching::new_a(a, b_ports)
            } else if i < a + b {
                CreateMatching::new_b(a)
            } else {
                CreateMatching::bystander(a)
            }
        })
        .collect()
}

#[test]
fn matching_matches_legacy_over_all_realizations() {
    for (a, b, n) in [(1, 1, 2), (1, 2, 3), (1, 1, 3), (2, 2, 4), (1, 2, 4)] {
        for alpha in Assignment::iter_profiles(n) {
            let k = alpha.k();
            let mut prng = StdRng::seed_from_u64((n + a) as u64);
            for ports in [
                PortNumbering::cyclic(n),
                PortNumbering::random(n, &mut prng),
            ] {
                let model = Model::MessagePassing(ports);
                for t in 1..=3usize {
                    for index in 0..1u64 << (k * t) {
                        let legacy = run_nodes(
                            &model,
                            &alpha,
                            128,
                            legacy_matching_nodes(a, b, n, &model),
                            &mut TapeRng::from_tree_index(k, t, index),
                        );
                        let choreo = run_choreo(
                            &MatchingChoreo { a, b },
                            &model,
                            &alpha,
                            128,
                            &mut TapeRng::from_tree_index(k, t, index),
                        );
                        assert_same(
                            &legacy,
                            &choreo,
                            &format!(
                                "matching a={a} b={b} n={n} sizes={:?} t={t} index={index}",
                                alpha.sources()
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn consensus_reduction_matches_legacy_on_blackboard() {
    let inputs = [7u64, 3, 9, 3];
    for n in 1..=4usize {
        let inputs = inputs[..n].to_vec();
        for alpha in Assignment::iter_profiles(n) {
            let k = alpha.k();
            for t in 1..=3usize {
                for index in 0..1u64 << (k * t) {
                    let legacy = run_nodes(
                        &Model::Blackboard,
                        &alpha,
                        96,
                        inputs
                            .iter()
                            .map(|&v| consensus_node(BlackboardLeaderElection::new(), v))
                            .collect(),
                        &mut TapeRng::from_tree_index(k, t, index),
                    );
                    let choreo = run_choreo(
                        &consensus_choreo(BleChoreo, inputs.clone()),
                        &Model::Blackboard,
                        &alpha,
                        96,
                        &mut TapeRng::from_tree_index(k, t, index),
                    );
                    assert_same(
                        &legacy,
                        &choreo,
                        &format!(
                            "consensus/bb n={n} sizes={:?} t={t} index={index}",
                            alpha.sources()
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn consensus_reduction_matches_legacy_under_message_passing() {
    let inputs = [5u64, 5, 1, 8];
    for n in 2..=4usize {
        let inputs = inputs[..n].to_vec();
        for alpha in Assignment::iter_profiles(n) {
            let k = alpha.k();
            let model = Model::MessagePassing(PortNumbering::cyclic(n));
            for t in 1..=2usize {
                for index in 0..1u64 << (k * t) {
                    let legacy = run_nodes(
                        &model,
                        &alpha,
                        256,
                        inputs
                            .iter()
                            .map(|&v| consensus_node(EuclidLeaderElection::new(k), v))
                            .collect(),
                        &mut TapeRng::from_tree_index(k, t, index),
                    );
                    let choreo = run_choreo(
                        &consensus_choreo(EuclidChoreo { k }, inputs.clone()),
                        &model,
                        &alpha,
                        256,
                        &mut TapeRng::from_tree_index(k, t, index),
                    );
                    assert_same(
                        &legacy,
                        &choreo,
                        &format!(
                            "consensus/mp n={n} sizes={:?} t={t} index={index}",
                            alpha.sources()
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn seeded_long_runs_agree_and_decide() {
    // Statistical leg: long seeded runs where the protocols actually
    // decide, so bit-identity is exercised through decision rounds too.
    for seed in 0..8u64 {
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let legacy = run_nodes(
            &Model::Blackboard,
            &alpha,
            128,
            (0..3).map(|_| BlackboardLeaderElection::new()).collect(),
            &mut StdRng::seed_from_u64(seed),
        );
        let choreo = run_choreo(
            &BleChoreo,
            &Model::Blackboard,
            &alpha,
            128,
            &mut StdRng::seed_from_u64(seed),
        );
        assert!(legacy.completed, "seed {seed}: ble should decide");
        assert_same(&legacy, &choreo, &format!("ble seeded run {seed}"));

        let alpha = Assignment::from_group_sizes(&[2, 3]).unwrap();
        let mut prng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let ports = PortNumbering::random(5, &mut prng);
        let model = Model::MessagePassing(ports);
        let legacy = run_nodes(
            &model,
            &alpha,
            6000,
            (0..5).map(|_| EuclidLeaderElection::new(2)).collect(),
            &mut StdRng::seed_from_u64(seed),
        );
        let choreo = run_choreo(
            &EuclidChoreo { k: 2 },
            &model,
            &alpha,
            6000,
            &mut StdRng::seed_from_u64(seed),
        );
        assert!(legacy.completed, "seed {seed}: euclid should decide");
        assert_same(&legacy, &choreo, &format!("euclid seeded run {seed}"));
    }
}
