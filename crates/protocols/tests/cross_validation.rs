//! Cross-validation: executable choreographies vs the exact knowledge
//! kernel.
//!
//! The paper's solvability theory (`rsbt_core::solvability`,
//! `rsbt_core::probability`) and the executable protocols were built as
//! separate layers; this suite pins them together point by point. For
//! every α-consistent realization with `n ≤ 4`, `t ≤ 3`:
//!
//! * the projected blackboard-leader-election machine, run on exactly that
//!   realization's bits, completes within `t + 1` rounds **iff**
//!   [`solvability::solves`] says leader election is solvable at time `t`
//!   on that realization;
//! * same for weak symmetry breaking;
//! * the per-α completion counts therefore reproduce
//!   [`probability::exact`] exactly (as a ratio of integers, not within a
//!   tolerance).
//!
//! The `t + 1` horizon is the protocols' decision structure: decisions at
//! round `t + 1` read the round-`t` board, and both "has a unique string"
//! (leader election) and "has two distinct strings" (symmetry breaking)
//! are monotone under extension, so earlier decisions never disagree with
//! the time-`t` verdict.

use rand::RngCore;
use rsbt_core::{probability, solvability};
use rsbt_protocols::choreo::{BleChoreo, Choreography, WsbChoreo};
use rsbt_random::{Assignment, Realization};
use rsbt_sim::runner::{run_nodes_with, Protocol, RunOutcome};
use rsbt_sim::{KnowledgeArena, Model};
use rsbt_tasks::{LeaderElection, WeakSymmetryBreaking};

/// Replays one realization's bits in the runner's draw order (round-major,
/// source-minor); zero bits afterwards (the final round's draws are dead:
/// decisions only read the previous round's board).
struct TapeRng {
    bits: Vec<bool>,
    pos: usize,
}

impl TapeRng {
    fn from_tree_index(k: usize, t: usize, index: u64) -> Self {
        let bits = (1..=t)
            .flat_map(|r| (0..k).map(move |s| index >> ((t - r) * k + s) & 1 == 1))
            .collect();
        TapeRng { bits, pos: 0 }
    }
}

impl RngCore for TapeRng {
    fn next_u64(&mut self) -> u64 {
        let b = self.bits.get(self.pos).copied().unwrap_or(false);
        self.pos += 1;
        u64::from(b)
    }
}

fn run_choreo_on_tape<C: Choreography>(
    choreo: &C,
    alpha: &Assignment,
    t: usize,
    index: u64,
) -> RunOutcome<<C::Node as Protocol>::Output> {
    let model = Model::Blackboard;
    let projection = choreo
        .global()
        .project(&model, alpha.n())
        .expect("blackboard protocols project");
    let nodes: Vec<C::Node> = (0..alpha.n())
        .map(|i| choreo.node(i, &model, &projection))
        .collect();
    let mut rng = TapeRng::from_tree_index(alpha.k(), t, index);
    run_nodes_with(&model, alpha, t + 1, nodes, &mut rng, projection.options())
}

/// Shared sweep: for every profile and horizon, check the protocol's
/// completion against per-realization solvability, and the completion
/// count against the exact probability.
fn cross_validate<C, T>(choreo: &C, task: &T, n_min: usize, what: &str)
where
    C: Choreography,
    T: rsbt_tasks::Task + ?Sized,
{
    let model = Model::Blackboard;
    let mut arena = KnowledgeArena::new();
    for n in n_min..=4usize {
        for alpha in Assignment::iter_profiles(n) {
            let k = alpha.k();
            for t in 1..=3usize {
                let mut completed_runs = 0u64;
                for (index, rho) in Realization::enumerate_consistent(&alpha, t).enumerate() {
                    let index = index as u64;
                    let out = run_choreo_on_tape(choreo, &alpha, t, index);
                    let solvable = solvability::solves(&model, &rho, task, &mut arena);
                    assert_eq!(
                        out.completed,
                        solvable,
                        "{what}: n={n} sizes={:?} t={t} index={index}: \
                         protocol completed={} but kernel says solvable={}",
                        alpha.sources(),
                        out.completed,
                        solvable,
                    );
                    completed_runs += u64::from(out.completed);
                }
                let total = 1u64 << (k * t);
                let p_protocol = completed_runs as f64 / total as f64;
                let p_exact = probability::exact(&model, task, &alpha, t);
                assert_eq!(
                    p_protocol,
                    p_exact,
                    "{what}: n={n} sizes={:?} t={t}: protocol completion ratio \
                     {completed_runs}/{total} != exact probability {p_exact}",
                    alpha.sources(),
                );
            }
        }
    }
}

#[test]
fn ble_agrees_with_solvability_kernel_and_exact_probability() {
    cross_validate(&BleChoreo, &LeaderElection, 1, "ble");
}

#[test]
fn wsb_agrees_with_solvability_kernel_and_exact_probability() {
    // The WSB task is undefined for n = 1 (a single node cannot break
    // symmetry with itself), so the sweep starts at n = 2.
    cross_validate(&WsbChoreo, &WeakSymmetryBreaking, 2, "wsb");
}
