//! Blackboard leader *and deputy* election — the algorithmic side of the
//! paper's Section 5 future-work example (unconstrained roles).
//!
//! Strategy: keep posting randomness strings; decide once the common
//! multiset contains **two distinct unique strings** — their holders
//! become leader (smaller string) and deputy (next unique string), and
//! everyone else follows. In the blackboard model the equality classes
//! are exactly the source groups merged by string collisions, so the task
//! is eventually solvable iff **at least two sources are singletons**
//! (or `n = 2` with two sources, where both classes are singletons) — a
//! strictly stronger requirement than Theorem 4.1's single singleton,
//! quantifying how much harder the paper's future-work task is.

use rsbt_sim::net::{Wire, WireError};
use rsbt_sim::runner::{Incoming, Outgoing, Protocol, RoundCtx};

/// Roles of the leader-and-deputy protocol.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DeputyRole {
    /// The elected leader.
    Leader,
    /// The deputy (immediate backup).
    Deputy,
    /// Everyone else.
    Follower,
}

impl Wire for DeputyRole {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            DeputyRole::Leader => 0,
            DeputyRole::Deputy => 1,
            DeputyRole::Follower => 2,
        });
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(DeputyRole::Leader),
            1 => Ok(DeputyRole::Deputy),
            2 => Ok(DeputyRole::Follower),
            _ => Err(WireError::new("invalid DeputyRole tag")),
        }
    }

    fn wire_len(&self) -> usize {
        1
    }
}

/// The blackboard leader-and-deputy protocol (unconstrained roles).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rsbt_protocols::{DeputyRole, LeaderAndDeputyBlackboard};
/// use rsbt_random::Assignment;
/// use rsbt_sim::{runner, Model};
///
/// let alpha = Assignment::from_group_sizes(&[1, 1, 2]).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let out = runner::run(
///     &Model::Blackboard, &alpha, 128,
///     LeaderAndDeputyBlackboard::new, &mut rng,
/// );
/// assert!(out.completed);
/// let leaders = out.outputs.iter().filter(|o| **o == Some(DeputyRole::Leader)).count();
/// let deputies = out.outputs.iter().filter(|o| **o == Some(DeputyRole::Deputy)).count();
/// assert_eq!((leaders, deputies), (1, 1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct LeaderAndDeputyBlackboard {
    history: Vec<bool>,
    decided: Option<DeputyRole>,
}

impl LeaderAndDeputyBlackboard {
    /// Creates a fresh, undecided node.
    pub fn new() -> Self {
        LeaderAndDeputyBlackboard::default()
    }
}

impl Protocol for LeaderAndDeputyBlackboard {
    type Msg = Vec<bool>;
    type Output = DeputyRole;

    fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<Vec<bool>>) -> Outgoing<Vec<bool>> {
        if self.decided.is_some() {
            return Outgoing::Silent;
        }
        if ctx.round > 1 {
            let board = incoming.board_view().expect("runs on a blackboard");
            let mine = self.history.clone();
            let mut all: Vec<&Vec<bool>> = board.iter().collect();
            all.push(&mine);
            all.sort();
            // Unique strings in lexicographic order.
            let uniques: Vec<&Vec<bool>> = all
                .iter()
                .enumerate()
                .filter(|(i, s)| {
                    let prev_same = *i > 0 && all[i - 1] == **s;
                    let next_same = *i + 1 < all.len() && all[i + 1] == **s;
                    !prev_same && !next_same
                })
                .map(|(_, s)| *s)
                .collect();
            if uniques.len() >= 2 {
                self.decided = Some(if mine == *uniques[0] {
                    DeputyRole::Leader
                } else if mine == *uniques[1] {
                    DeputyRole::Deputy
                } else {
                    DeputyRole::Follower
                });
                return Outgoing::Silent;
            }
        }
        self.history.push(ctx.bit);
        Outgoing::Post(self.history.clone())
    }

    fn output(&self) -> Option<DeputyRole> {
        self.decided
    }

    fn msg_bytes(msg: &Vec<bool>) -> usize {
        msg.wire_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsbt_random::Assignment;
    use rsbt_sim::{runner, Model};

    fn run_ld(sizes: &[usize], seed: u64, cap: usize) -> runner::RunOutcome<DeputyRole> {
        let alpha = Assignment::from_group_sizes(sizes).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        runner::run(
            &Model::Blackboard,
            &alpha,
            cap,
            LeaderAndDeputyBlackboard::new,
            &mut rng,
        )
    }

    fn role_counts(outs: &[Option<DeputyRole>]) -> (usize, usize, usize) {
        let c = |r| outs.iter().filter(|o| **o == Some(r)).count();
        (
            c(DeputyRole::Leader),
            c(DeputyRole::Deputy),
            c(DeputyRole::Follower),
        )
    }

    #[test]
    fn two_singletons_elect_leader_and_deputy() {
        for seed in 0..20 {
            let out = run_ld(&[1, 1, 3], seed, 256);
            assert!(out.completed, "seed {seed}");
            assert_eq!(role_counts(&out.outputs), (1, 1, 3), "seed {seed}");
        }
    }

    #[test]
    fn all_private_works() {
        for seed in 0..10 {
            let out = run_ld(&[1, 1, 1, 1], seed, 256);
            assert!(out.completed);
            assert_eq!(role_counts(&out.outputs), (1, 1, 2));
        }
    }

    #[test]
    fn one_singleton_is_not_enough() {
        // A leader can be elected, but no deputy ever distinguishes itself
        // inside the remaining pair.
        for seed in 0..5 {
            let out = run_ld(&[1, 2], seed, 64);
            assert!(!out.completed, "seed {seed}");
        }
    }

    #[test]
    fn no_singleton_stalls() {
        for seed in 0..5 {
            let out = run_ld(&[2, 2], seed, 64);
            assert!(!out.completed);
        }
    }

    #[test]
    fn leader_holds_smaller_string_than_deputy() {
        // Consistency of the deterministic rule: roles are a function of
        // the common multiset, so re-running with the same seed reproduces
        // the same role vector.
        let a = run_ld(&[1, 1, 2], 11, 256);
        let b = run_ld(&[1, 1, 2], 11, 256);
        assert!(a.completed && b.completed);
        assert_eq!(a.outputs, b.outputs);
    }
}
