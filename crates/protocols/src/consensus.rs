//! Consensus as a name-independent task, solved via the Appendix C
//! reduction.
//!
//! Binary (or multi-valued) consensus — everyone outputs the same value,
//! which must be some party's input — is name-independent: parties with
//! equal inputs trivially agree. The paper notes (footnote 3) that
//! consensus is deterministically solvable in the fault-free setting; here
//! it serves as the canonical demonstration of Theorem C.1.

use std::rc::Rc;

use rsbt_sim::runner::Protocol;

use crate::reduction::{TableSolver, ViaLeader};
use crate::role::Role;

/// The consensus solver: every input maps to the minimal input (validity:
/// the decision is someone's input; agreement: the table is constant).
pub fn consensus_solver() -> TableSolver {
    Rc::new(|inputs: &[u64]| {
        let decision = *inputs.iter().min().expect("at least one input");
        inputs.iter().map(|&v| (v, decision)).collect()
    })
}

/// Wraps an election protocol into a consensus protocol for one node with
/// the given input.
pub fn consensus_node<L: Protocol<Output = Role>>(inner: L, input: u64) -> ViaLeader<L> {
    ViaLeader::new(inner, input, consensus_solver())
}

/// Checks the two consensus properties on a complete output vector.
///
/// Returns `Err` with a description when agreement or validity fails.
///
/// # Errors
///
/// * agreement — two nodes decided different values;
/// * validity — the decision is not among the inputs;
/// * completeness — some node is undecided.
pub fn check_consensus(inputs: &[u64], outputs: &[Option<u64>]) -> Result<u64, String> {
    let decided: Vec<u64> = outputs
        .iter()
        .map(|o| o.ok_or_else(|| "undecided node".to_string()))
        .collect::<Result<_, _>>()?;
    let first = decided[0];
    if decided.iter().any(|&d| d != first) {
        return Err(format!("agreement violated: {decided:?}"));
    }
    if !inputs.contains(&first) {
        return Err(format!("validity violated: {first} not among inputs"));
    }
    Ok(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsbt_random::Assignment;
    use rsbt_sim::runner::run_nodes;
    use rsbt_sim::{Model, PortNumbering};

    use crate::{BlackboardLeaderElection, EuclidLeaderElection};

    #[test]
    fn blackboard_consensus() {
        for seed in 0..5 {
            let alpha = Assignment::private(4);
            let mut rng = StdRng::seed_from_u64(seed);
            let inputs = [4u64, 2, 8, 2];
            let nodes: Vec<_> = inputs
                .iter()
                .map(|&v| consensus_node(BlackboardLeaderElection::new(), v))
                .collect();
            let out = run_nodes(&Model::Blackboard, &alpha, 256, nodes, &mut rng);
            assert!(out.completed, "seed {seed}");
            assert_eq!(check_consensus(&inputs, &out.outputs), Ok(2));
        }
    }

    #[test]
    fn message_passing_consensus() {
        for seed in 0..3 {
            let alpha = Assignment::from_group_sizes(&[2, 3]).unwrap();
            let mut rng = StdRng::seed_from_u64(seed + 40);
            let ports = PortNumbering::random(5, &mut rng);
            let inputs = [9u64, 9, 1, 1, 1];
            let nodes: Vec<_> = inputs
                .iter()
                .map(|&v| consensus_node(EuclidLeaderElection::new(2), v))
                .collect();
            let out = run_nodes(&Model::MessagePassing(ports), &alpha, 6000, nodes, &mut rng);
            assert!(out.completed, "seed {seed}");
            assert_eq!(check_consensus(&inputs, &out.outputs), Ok(1));
        }
    }

    #[test]
    fn checker_detects_violations() {
        assert!(check_consensus(&[1, 2], &[Some(1), None]).is_err());
        assert!(check_consensus(&[1, 2], &[Some(1), Some(2)]).is_err());
        assert!(check_consensus(&[1, 2], &[Some(7), Some(7)]).is_err());
        assert_eq!(check_consensus(&[1, 2], &[Some(2), Some(2)]), Ok(2));
    }
}
