//! Decision values for election protocols.

use std::fmt;

use rsbt_sim::net::{Wire, WireError};

/// The outcome of a leader-election protocol at one node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Role {
    /// This node was elected.
    Leader,
    /// This node was defeated.
    Follower,
}

impl Role {
    /// Whether this node is the leader.
    pub fn is_leader(self) -> bool {
        self == Role::Leader
    }
}

impl Wire for Role {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Role::Leader => 0,
            Role::Follower => 1,
        });
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(Role::Leader),
            1 => Ok(Role::Follower),
            _ => Err(WireError::new("invalid Role tag")),
        }
    }

    fn wire_len(&self) -> usize {
        1
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Leader => write!(f, "leader"),
            Role::Follower => write!(f, "follower"),
        }
    }
}

/// Counts the leaders among decided outputs; `None` entries are undecided.
pub fn leader_count(outputs: &[Option<Role>]) -> usize {
    outputs
        .iter()
        .filter(|o| matches!(o, Some(Role::Leader)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles() {
        assert!(Role::Leader.is_leader());
        assert!(!Role::Follower.is_leader());
        assert_eq!(Role::Leader.to_string(), "leader");
        assert_eq!(Role::Follower.to_string(), "follower");
    }

    #[test]
    fn counting() {
        let outs = vec![Some(Role::Leader), Some(Role::Follower), None];
        assert_eq!(leader_count(&outs), 1);
        assert_eq!(leader_count(&[]), 0);
    }
}
