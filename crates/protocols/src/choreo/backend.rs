//! One choreography, three execution backends.
//!
//! A [`Choreography`] packages a [`GlobalProtocol`] description together
//! with a node factory; a [`Backend`] consumes a choreography plus a
//! [`RunJob`] and produces a [`BackendReport`]:
//!
//! * [`SimBackend`] — the in-simulator runner
//!   ([`rsbt_sim::runner::run_nodes_with`]), single seeded run;
//! * [`McBackend`] — protocol-level Monte-Carlo estimation: many
//!   independent seeded runs over per-sample
//!   [`StreamRng`](rand::rngs::StreamRng) streams, fanned out over the
//!   deterministic thread pool, summarized with Wilson intervals. The
//!   estimate is invariant under the thread count;
//! * [`SocketBackend`] — real processes: each node is its own OS process
//!   (or thread, for in-process smoke tests), talking to a coordinator
//!   over loopback TCP with the [`crate::choreo`] wire format. The
//!   coordinator draws bits from the same seeded RNG as [`SimBackend`],
//!   so both backends agree run-for-run on the same seed.

use std::fmt;
use std::io;
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use rand::rngs::{StdRng, StreamRng};
use rand::SeedableRng;
use rsbt_core::probability::wilson_interval;
use rsbt_random::Assignment;
use rsbt_sim::net::{run_coordinator, run_coordinator_ft, run_node, FtConfig, NetError, Wire};
use rsbt_sim::pool::map_sample_chunks;
use rsbt_sim::runner::{run_nodes_with, Protocol, RunOutcome, RunStats};
use rsbt_sim::Model;

use super::global::{GlobalProtocol, Projection, ProjectionError};

/// A global protocol description bundled with its node factory: everything
/// a backend needs to execute the protocol.
pub trait Choreography {
    /// The projected per-node machine (usually a
    /// [`BoardMachine`](super::machine::BoardMachine) or
    /// [`PortMachine`](super::machine::PortMachine)).
    type Node: Protocol;

    /// Protocol name, as reported in benchmark rows.
    fn name(&self) -> &'static str;

    /// The global description. Backends project it before building nodes.
    fn global(&self) -> GlobalProtocol;

    /// Builds node `index` from the validated projection. Within a role,
    /// nodes must run identical code (anonymity); distinct roles (e.g.
    /// matching's side A/B) may differ.
    fn node(&self, index: usize, model: &Model, projection: &Projection) -> Self::Node;
}

/// Message type of a choreography's nodes.
pub type NodeMsg<C> = <<C as Choreography>::Node as Protocol>::Msg;
/// Output type of a choreography's nodes.
pub type NodeOutput<C> = <<C as Choreography>::Node as Protocol>::Output;

/// One execution request, common to all backends.
#[derive(Clone, Copy, Debug)]
pub struct RunJob<'a> {
    /// The concrete communication model.
    pub model: &'a Model,
    /// The randomness assignment.
    pub alpha: &'a Assignment,
    /// Round cap.
    pub max_rounds: usize,
    /// Seed: single-run backends seed one [`StdRng`], the Monte-Carlo
    /// backend derives one [`StreamRng`] stream per sample.
    pub seed: u64,
}

/// Monte-Carlo summary of many protocol runs.
#[derive(Clone, Debug)]
pub struct ProtocolEstimate {
    /// Samples drawn.
    pub samples: u64,
    /// Runs in which every node decided within the round cap.
    pub successes: u64,
    /// Point estimate `successes / samples`.
    pub p: f64,
    /// Wilson 95% lower bound on the completion probability.
    pub ci_lo: f64,
    /// Wilson 95% upper bound.
    pub ci_hi: f64,
    /// `completed_by_round[r - 1]` counts runs that completed in `≤ r`
    /// rounds (cumulative).
    pub completed_by_round: Vec<u64>,
    /// Mean rounds over *completed* runs (`NaN` when none completed).
    pub mean_rounds: f64,
    /// Total blackboard posts across all runs.
    pub total_posts: u64,
    /// Total point-to-point deliveries across all runs.
    pub total_sends: u64,
    /// Largest message observed in any run, in bytes.
    pub max_msg_bytes: usize,
}

impl ProtocolEstimate {
    /// Cumulative completion-probability estimates per round,
    /// `series()[r - 1] = P(all nodes decided within r rounds)`.
    pub fn series(&self) -> Vec<f64> {
        self.completed_by_round
            .iter()
            .map(|&c| c as f64 / self.samples as f64)
            .collect()
    }

    /// Wilson 95% interval on the round-`r` cumulative completion
    /// probability (1-based `r`).
    pub fn round_interval(&self, r: usize) -> (f64, f64) {
        wilson_interval(self.completed_by_round[r - 1], self.samples, 1.96)
    }
}

/// What a backend produced: a single run or a Monte-Carlo estimate.
#[derive(Clone, Debug)]
pub enum BackendReport<O> {
    /// A single executed run (simulator and socket backends).
    Run(RunOutcome<O>),
    /// A Monte-Carlo summary (estimator backend).
    Estimate(ProtocolEstimate),
}

impl<O> BackendReport<O> {
    /// The single-run outcome.
    ///
    /// # Panics
    ///
    /// Panics on an [`BackendReport::Estimate`] report.
    pub fn into_run(self) -> RunOutcome<O> {
        match self {
            BackendReport::Run(r) => r,
            BackendReport::Estimate(_) => panic!("expected a single run, got an estimate"),
        }
    }

    /// The Monte-Carlo estimate.
    ///
    /// # Panics
    ///
    /// Panics on a [`BackendReport::Run`] report.
    pub fn into_estimate(self) -> ProtocolEstimate {
        match self {
            BackendReport::Estimate(e) => e,
            BackendReport::Run(_) => panic!("expected an estimate, got a single run"),
        }
    }
}

/// Why a backend failed to execute a choreography.
#[derive(Debug)]
pub enum BackendError {
    /// The global protocol failed validation or projection.
    Projection(ProjectionError),
    /// The socket backend hit a wire or timeout failure.
    Net(NetError),
    /// A worker process could not be spawned.
    Spawn(io::Error),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Projection(e) => write!(f, "projection failed: {e}"),
            BackendError::Net(e) => write!(f, "socket backend failed: {e}"),
            BackendError::Spawn(e) => write!(f, "could not spawn worker: {e}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<ProjectionError> for BackendError {
    fn from(e: ProjectionError) -> Self {
        BackendError::Projection(e)
    }
}

impl From<NetError> for BackendError {
    fn from(e: NetError) -> Self {
        BackendError::Net(e)
    }
}

/// An execution backend for choreographies.
///
/// The bounds on `run` are the union of what the three backends need
/// (`Send` for the Monte-Carlo fan-out and thread-per-node sockets,
/// [`Wire`] for the socket wire format); all protocol types in this crate
/// satisfy them.
pub trait Backend {
    /// Executes `choreo` per `job`.
    ///
    /// # Errors
    ///
    /// [`BackendError::Projection`] when the global description is
    /// invalid for the job's model/size; socket backends also report
    /// [`BackendError::Net`] and [`BackendError::Spawn`].
    fn run<C>(
        &self,
        choreo: &C,
        job: &RunJob<'_>,
    ) -> Result<BackendReport<NodeOutput<C>>, BackendError>
    where
        C: Choreography + Sync,
        C::Node: Send,
        NodeMsg<C>: Wire + Send,
        NodeOutput<C>: Wire + Send;
}

/// Backend 1: the in-simulator lockstep runner. One seeded run.
#[derive(Clone, Copy, Default, Debug)]
pub struct SimBackend;

impl SimBackend {
    /// Projects and runs once, returning the raw outcome (same as
    /// [`Backend::run`] but without the report wrapper — handy in tests).
    ///
    /// # Errors
    ///
    /// [`ProjectionError`] when the description is invalid for the job.
    pub fn run_once<C: Choreography>(
        &self,
        choreo: &C,
        job: &RunJob<'_>,
    ) -> Result<RunOutcome<NodeOutput<C>>, ProjectionError> {
        let projection = choreo.global().project(job.model, job.alpha.n())?;
        let nodes: Vec<C::Node> = (0..job.alpha.n())
            .map(|i| choreo.node(i, job.model, &projection))
            .collect();
        let mut rng = StdRng::seed_from_u64(job.seed);
        Ok(run_nodes_with(
            job.model,
            job.alpha,
            job.max_rounds,
            nodes,
            &mut rng,
            projection.options(),
        ))
    }
}

impl Backend for SimBackend {
    fn run<C>(
        &self,
        choreo: &C,
        job: &RunJob<'_>,
    ) -> Result<BackendReport<NodeOutput<C>>, BackendError>
    where
        C: Choreography + Sync,
        C::Node: Send,
        NodeMsg<C>: Wire + Send,
        NodeOutput<C>: Wire + Send,
    {
        Ok(BackendReport::Run(self.run_once(choreo, job)?))
    }
}

/// Per-chunk accumulator for the Monte-Carlo backend; merged in chunk
/// order so the totals are independent of the thread count.
#[derive(Clone, Default)]
struct McChunk {
    successes: u64,
    completed_by_round: Vec<u64>,
    sum_rounds: u64,
    stats: RunStats,
}

/// Backend 2: protocol-level Monte-Carlo estimation.
///
/// Sample `i` runs the whole protocol under
/// `StreamRng::new(job.seed, i)` — every sample owns a dedicated RNG
/// stream, so the estimate depends only on `(seed, samples)`, never on
/// `threads` (the PR 5 discipline, applied to protocol executions instead
/// of knowledge simulations).
#[derive(Clone, Copy, Debug)]
pub struct McBackend {
    /// Samples to draw.
    pub samples: u64,
    /// Worker threads for the fan-out.
    pub threads: usize,
}

impl McBackend {
    /// Projects once and estimates, returning the raw estimate.
    ///
    /// # Errors
    ///
    /// [`ProjectionError`] when the description is invalid for the job.
    ///
    /// # Panics
    ///
    /// Panics when `samples == 0`.
    pub fn estimate<C>(
        &self,
        choreo: &C,
        job: &RunJob<'_>,
    ) -> Result<ProtocolEstimate, ProjectionError>
    where
        C: Choreography + Sync,
    {
        assert!(self.samples > 0, "need at least one sample");
        let projection = choreo.global().project(job.model, job.alpha.n())?;
        let options = projection.options();
        let chunks = map_sample_chunks(
            self.samples as usize,
            self.threads,
            |_arena, range| -> McChunk {
                let mut acc = McChunk {
                    completed_by_round: vec![0; job.max_rounds],
                    ..McChunk::default()
                };
                for i in range {
                    let nodes: Vec<C::Node> = (0..job.alpha.n())
                        .map(|idx| choreo.node(idx, job.model, &projection))
                        .collect();
                    let mut rng = StreamRng::new(job.seed, i as u64);
                    let out = run_nodes_with(
                        job.model,
                        job.alpha,
                        job.max_rounds,
                        nodes,
                        &mut rng,
                        options,
                    );
                    if out.completed {
                        acc.successes += 1;
                        acc.sum_rounds += out.rounds as u64;
                        for slot in &mut acc.completed_by_round[out.rounds - 1..] {
                            *slot += 1;
                        }
                    }
                    acc.stats.posts += out.stats.posts;
                    acc.stats.sends += out.stats.sends;
                    acc.stats.crashes += out.stats.crashes;
                    acc.stats.omissions += out.stats.omissions;
                    acc.stats.max_msg_bytes = acc.stats.max_msg_bytes.max(out.stats.max_msg_bytes);
                }
                acc
            },
        );
        let mut successes = 0;
        let mut sum_rounds = 0;
        let mut completed_by_round = vec![0u64; job.max_rounds];
        let mut stats = RunStats::default();
        for chunk in chunks {
            successes += chunk.successes;
            sum_rounds += chunk.sum_rounds;
            if !chunk.completed_by_round.is_empty() {
                for (total, c) in completed_by_round.iter_mut().zip(&chunk.completed_by_round) {
                    *total += c;
                }
            }
            stats.posts += chunk.stats.posts;
            stats.sends += chunk.stats.sends;
            stats.crashes += chunk.stats.crashes;
            stats.omissions += chunk.stats.omissions;
            stats.max_msg_bytes = stats.max_msg_bytes.max(chunk.stats.max_msg_bytes);
        }
        let (ci_lo, ci_hi) = wilson_interval(successes, self.samples, 1.96);
        Ok(ProtocolEstimate {
            samples: self.samples,
            successes,
            p: successes as f64 / self.samples as f64,
            ci_lo,
            ci_hi,
            completed_by_round,
            mean_rounds: sum_rounds as f64 / successes as f64,
            total_posts: stats.posts,
            total_sends: stats.sends,
            max_msg_bytes: stats.max_msg_bytes,
        })
    }
}

impl Backend for McBackend {
    fn run<C>(
        &self,
        choreo: &C,
        job: &RunJob<'_>,
    ) -> Result<BackendReport<NodeOutput<C>>, BackendError>
    where
        C: Choreography + Sync,
        C::Node: Send,
        NodeMsg<C>: Wire + Send,
        NodeOutput<C>: Wire + Send,
    {
        Ok(BackendReport::Estimate(self.estimate(choreo, job)?))
    }
}

/// Builds the command line for one spawned worker from `(index, addr)`.
pub type SpawnFn = Box<dyn Fn(usize, &str) -> Command + Send + Sync>;

/// How the socket backend obtains its worker peers.
pub enum Launcher {
    /// One thread per node inside this process — real sockets, real wire
    /// format, no process spawn (used by tests and CI smoke steps).
    InProcess,
    /// One OS process per node: the closure receives `(index, addr)` and
    /// returns the `Command` to spawn (typically the current binary in a
    /// worker mode). Workers are killed if the coordinator fails.
    Spawn(SpawnFn),
}

impl fmt::Debug for Launcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Launcher::InProcess => write!(f, "Launcher::InProcess"),
            Launcher::Spawn(_) => write!(f, "Launcher::Spawn(..)"),
        }
    }
}

/// A deterministic mid-run fault injection: kill worker `node`'s process
/// when the coordinator reaches round `round` (1-based, before that
/// round's messages are exchanged). Only meaningful with
/// [`Launcher::Spawn`] — in-process workers share our address space and
/// cannot be killed without taking the coordinator down.
#[derive(Clone, Copy, Debug)]
pub struct KillPlan {
    /// Worker index to kill.
    pub node: usize,
    /// 1-based round at whose barrier the kill fires.
    pub round: usize,
}

/// Backend 3: real multi-process execution over loopback TCP.
///
/// The coordinator (this process) draws bits from
/// `StdRng::seed_from_u64(job.seed)` exactly as [`SimBackend`] does, so
/// the two backends agree on outputs, rounds, and — when
/// [`Protocol::msg_bytes`] is the wire length — on byte counters, for the
/// same job.
///
/// Spawned workers run under the fault-tolerant coordinator
/// ([`run_coordinator_ft`]): a worker that dies mid-run is declared
/// crashed after a bounded retry/backoff and the run degrades to a
/// partial [`RunOutcome`] (`None` output, `crashed` flag) instead of
/// failing. With every worker alive the fault-tolerant path draws the
/// same RNG stream as the strict one, so no-fault runs stay bit-identical
/// to [`SimBackend`].
#[derive(Debug)]
pub struct SocketBackend {
    /// Per-read deadline (handshake and round barriers).
    pub timeout: Duration,
    /// Worker strategy.
    pub launcher: Launcher,
    /// Optional deterministic mid-run kill (spawn launcher only).
    pub kill: Option<KillPlan>,
}

impl SocketBackend {
    /// An in-process (thread-per-node) socket backend with the given
    /// per-read timeout.
    pub fn in_process(timeout: Duration) -> Self {
        SocketBackend {
            timeout,
            launcher: Launcher::InProcess,
            kill: None,
        }
    }

    /// A process-per-node socket backend; `spawn(index, addr)` builds
    /// each worker's command line.
    pub fn spawning(
        timeout: Duration,
        spawn: impl Fn(usize, &str) -> Command + Send + Sync + 'static,
    ) -> Self {
        SocketBackend {
            timeout,
            launcher: Launcher::Spawn(Box::new(spawn)),
            kill: None,
        }
    }

    /// Kills worker `node` when the coordinator reaches round `round`
    /// (1-based). Requires [`Launcher::Spawn`]; the in-process launcher
    /// panics on a kill plan.
    #[must_use]
    pub fn with_kill(mut self, node: usize, round: usize) -> Self {
        self.kill = Some(KillPlan { node, round });
        self
    }

    fn run_inner<C>(
        &self,
        choreo: &C,
        job: &RunJob<'_>,
    ) -> Result<RunOutcome<NodeOutput<C>>, BackendError>
    where
        C: Choreography + Sync,
        C::Node: Send,
        NodeMsg<C>: Wire + Send,
        NodeOutput<C>: Wire + Send,
    {
        let projection = choreo.global().project(job.model, job.alpha.n())?;
        let options = projection.options();
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(NetError::Io)?;
        let addr = listener.local_addr().map_err(NetError::Io)?;
        let n = job.alpha.n();
        let timeout = Some(self.timeout);
        let mut rng = StdRng::seed_from_u64(job.seed);

        match &self.launcher {
            Launcher::InProcess => {
                assert!(
                    self.kill.is_none(),
                    "kill plans require the Spawn launcher: in-process workers \
                     share the coordinator's address space"
                );
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..n)
                        .map(|i| {
                            let node = choreo.node(i, job.model, &projection);
                            scope.spawn(move || run_node(addr, i, node, timeout))
                        })
                        .collect();
                    let result = run_coordinator::<NodeMsg<C>, NodeOutput<C>, _>(
                        &listener,
                        job.model,
                        job.alpha,
                        job.max_rounds,
                        &mut rng,
                        options,
                        timeout,
                    );
                    for handle in handles {
                        let _ = handle.join();
                    }
                    result.map_err(BackendError::Net)
                })
            }
            Launcher::Spawn(spawn) => {
                let addr_str = addr.to_string();
                let mut children: Vec<Child> = Vec::with_capacity(n);
                for i in 0..n {
                    let child = spawn(i, &addr_str)
                        .stdin(Stdio::null())
                        .spawn()
                        .map_err(BackendError::Spawn);
                    match child {
                        Ok(c) => children.push(c),
                        Err(e) => {
                            for mut c in children {
                                let _ = c.kill();
                                let _ = c.wait();
                            }
                            return Err(e);
                        }
                    }
                }
                let ft = FtConfig::with_timeout(self.timeout);
                let kill = self.kill;
                let result = run_coordinator_ft::<NodeMsg<C>, NodeOutput<C>, _, _>(
                    &listener,
                    job.model,
                    job.alpha,
                    job.max_rounds,
                    &mut rng,
                    options,
                    &ft,
                    |round| {
                        if let Some(plan) = kill {
                            if round == plan.round {
                                if let Some(child) = children.get_mut(plan.node) {
                                    let _ = child.kill();
                                }
                            }
                        }
                    },
                );
                for mut child in children {
                    if result.is_err() {
                        let _ = child.kill();
                    }
                    let _ = child.wait();
                }
                result.map_err(BackendError::Net)
            }
        }
    }
}

impl Backend for SocketBackend {
    fn run<C>(
        &self,
        choreo: &C,
        job: &RunJob<'_>,
    ) -> Result<BackendReport<NodeOutput<C>>, BackendError>
    where
        C: Choreography + Sync,
        C::Node: Send,
        NodeMsg<C>: Wire + Send,
        NodeOutput<C>: Wire + Send,
    {
        Ok(BackendReport::Run(self.run_inner(choreo, job)?))
    }
}
