//! Projected local machines: model-typed role traits and the adapters
//! that turn a role into a runner [`Protocol`].
//!
//! A role written against [`BoardRole`] receives a [`BoardView`] — the
//! *type system* makes it impossible for blackboard logic to read port
//! slots, so the old panicking accessors are unnecessary. The adapters
//! ([`BoardMachine`], [`PortMachine`], [`DualMachine`]) wrap a role
//! together with its projected [`LocalSpec`] and check every emitted
//! action against the global protocol's declaration before handing it to
//! the runner, and translate the role's typed action into the runner's
//! untyped [`Outgoing`].

use std::fmt;

use rsbt_sim::runner::{BoardView, Incoming, Outgoing, PortsView, Protocol, RoundCtx};

use super::global::{ActionKind, LocalSpec};

/// What a blackboard role may emit in a round.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BoardAction<M> {
    /// Post nothing.
    Silent,
    /// Append one message to the board.
    Post(M),
}

/// What a message-passing role may emit in a round.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PortAction<M> {
    /// Send nothing.
    Silent,
    /// Send each `(port, message)` pair.
    Send(Vec<(usize, M)>),
    /// Send one message through every port.
    Broadcast(M),
}

/// What a model-generic role may emit in a round (used by protocols that
/// run under either model, like the Appendix C reduction).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AnyAction<M> {
    /// Send nothing.
    Silent,
    /// Blackboard: append one message to the board.
    Post(M),
    /// Message passing: send each `(port, message)` pair.
    Send(Vec<(usize, M)>),
    /// Message passing: send one message through every port.
    Broadcast(M),
}

/// The incoming view of a model-generic role: whichever the model gives.
#[derive(Clone, Copy, Debug)]
pub enum View<'a, M> {
    /// Blackboard content (other nodes' posts, sorted).
    Board(BoardView<'a, M>),
    /// Per-port slots.
    Ports(PortsView<'a, M>),
}

/// A projected blackboard role: a state machine that reads the board and
/// may post.
pub trait BoardRole {
    /// Message alphabet (posted to the board).
    type Msg: Clone + Ord + fmt::Debug;
    /// Decision value.
    type Output: Clone + fmt::Debug;

    /// Executes one round against the board view.
    fn step(&mut self, ctx: RoundCtx, board: BoardView<'_, Self::Msg>) -> BoardAction<Self::Msg>;

    /// The decision, once made.
    fn decision(&self) -> Option<Self::Output>;

    /// Index of the global phase the *upcoming* step belongs to, used to
    /// select which [`LocalSpec`] phase governs the emitted action.
    /// Single-phase protocols keep the default.
    fn phase(&self) -> usize {
        0
    }

    /// Bytes charged per message; see
    /// [`Protocol::msg_bytes`](rsbt_sim::runner::Protocol::msg_bytes).
    fn msg_bytes(msg: &Self::Msg) -> usize {
        std::mem::size_of_val(msg)
    }
}

/// A projected message-passing role: reads port slots, may send.
pub trait PortRole {
    /// Message alphabet.
    type Msg: Clone + Ord + fmt::Debug;
    /// Decision value.
    type Output: Clone + fmt::Debug;

    /// Executes one round against the per-port view.
    fn step(&mut self, ctx: RoundCtx, ports: PortsView<'_, Self::Msg>) -> PortAction<Self::Msg>;

    /// The decision, once made.
    fn decision(&self) -> Option<Self::Output>;

    /// Current global phase; see [`BoardRole::phase`].
    fn phase(&self) -> usize {
        0
    }

    /// Bytes charged per message.
    fn msg_bytes(msg: &Self::Msg) -> usize {
        std::mem::size_of_val(msg)
    }
}

/// A projected model-generic role (admits both models; the projection
/// filters its allowed actions down to the concrete model).
pub trait DualRole {
    /// Message alphabet.
    type Msg: Clone + Ord + fmt::Debug;
    /// Decision value.
    type Output: Clone + fmt::Debug;

    /// Executes one round against whichever view the model provides.
    fn step(&mut self, ctx: RoundCtx, view: View<'_, Self::Msg>) -> AnyAction<Self::Msg>;

    /// The decision, once made.
    fn decision(&self) -> Option<Self::Output>;

    /// Current global phase; see [`BoardRole::phase`].
    fn phase(&self) -> usize {
        0
    }

    /// Bytes charged per message.
    fn msg_bytes(msg: &Self::Msg) -> usize {
        std::mem::size_of_val(msg)
    }
}

/// Adapter: a [`BoardRole`] plus its projected spec, as a runner
/// [`Protocol`].
#[derive(Clone, Debug)]
pub struct BoardMachine<R> {
    role: R,
    spec: LocalSpec,
}

impl<R: BoardRole> BoardMachine<R> {
    /// Binds `role` to its projected local spec.
    pub fn new(role: R, spec: LocalSpec) -> Self {
        BoardMachine { role, spec }
    }

    /// The wrapped role (for inspecting final state in tests).
    pub fn role(&self) -> &R {
        &self.role
    }
}

impl<R: BoardRole> Protocol for BoardMachine<R> {
    type Msg = R::Msg;
    type Output = R::Output;

    fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<Self::Msg>) -> Outgoing<Self::Msg> {
        if self.role.decision().is_some() {
            return Outgoing::Silent;
        }
        let board = incoming.board_view().unwrap_or_else(|| {
            panic!(
                "{}/{}: blackboard machine wired to message passing (projection should have rejected this)",
                self.spec.protocol, self.spec.role
            )
        });
        // The phase is sampled before the step: it indexes the phase the
        // upcoming emission belongs to.
        let phase = self.role.phase();
        match self.role.step(ctx, board) {
            BoardAction::Silent => Outgoing::Silent,
            BoardAction::Post(m) => {
                self.spec.check(phase, ActionKind::Post);
                Outgoing::Post(m)
            }
        }
    }

    fn output(&self) -> Option<Self::Output> {
        self.role.decision()
    }

    fn msg_bytes(msg: &Self::Msg) -> usize {
        R::msg_bytes(msg)
    }
}

/// Adapter: a [`PortRole`] plus its projected spec, as a runner
/// [`Protocol`].
#[derive(Clone, Debug)]
pub struct PortMachine<R> {
    role: R,
    spec: LocalSpec,
}

impl<R: PortRole> PortMachine<R> {
    /// Binds `role` to its projected local spec.
    pub fn new(role: R, spec: LocalSpec) -> Self {
        PortMachine { role, spec }
    }

    /// The wrapped role.
    pub fn role(&self) -> &R {
        &self.role
    }
}

impl<R: PortRole> Protocol for PortMachine<R> {
    type Msg = R::Msg;
    type Output = R::Output;

    fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<Self::Msg>) -> Outgoing<Self::Msg> {
        if self.role.decision().is_some() {
            return Outgoing::Silent;
        }
        let ports = incoming.ports_view().unwrap_or_else(|| {
            panic!(
                "{}/{}: message-passing machine wired to the blackboard (projection should have rejected this)",
                self.spec.protocol, self.spec.role
            )
        });
        let phase = self.role.phase();
        match self.role.step(ctx, ports) {
            PortAction::Silent => Outgoing::Silent,
            PortAction::Send(msgs) => {
                self.spec.check(phase, ActionKind::Send);
                Outgoing::Send(msgs)
            }
            PortAction::Broadcast(m) => {
                self.spec.check(phase, ActionKind::Broadcast);
                Outgoing::Broadcast(m)
            }
        }
    }

    fn output(&self) -> Option<Self::Output> {
        self.role.decision()
    }

    fn msg_bytes(msg: &Self::Msg) -> usize {
        R::msg_bytes(msg)
    }
}

/// Adapter: a [`DualRole`] plus its projected spec, as a runner
/// [`Protocol`].
#[derive(Clone, Debug)]
pub struct DualMachine<R> {
    role: R,
    spec: LocalSpec,
}

impl<R: DualRole> DualMachine<R> {
    /// Binds `role` to its projected local spec.
    pub fn new(role: R, spec: LocalSpec) -> Self {
        DualMachine { role, spec }
    }

    /// The wrapped role.
    pub fn role(&self) -> &R {
        &self.role
    }
}

impl<R: DualRole> Protocol for DualMachine<R> {
    type Msg = R::Msg;
    type Output = R::Output;

    fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<Self::Msg>) -> Outgoing<Self::Msg> {
        if self.role.decision().is_some() {
            return Outgoing::Silent;
        }
        let view = match incoming {
            Incoming::Board(_) => View::Board(incoming.board_view().expect("board view")),
            Incoming::Ports(_) => View::Ports(incoming.ports_view().expect("ports view")),
        };
        let phase = self.role.phase();
        match self.role.step(ctx, view) {
            AnyAction::Silent => Outgoing::Silent,
            AnyAction::Post(m) => {
                self.spec.check(phase, ActionKind::Post);
                Outgoing::Post(m)
            }
            AnyAction::Send(msgs) => {
                self.spec.check(phase, ActionKind::Send);
                Outgoing::Send(msgs)
            }
            AnyAction::Broadcast(m) => {
                self.spec.check(phase, ActionKind::Broadcast);
                Outgoing::Broadcast(m)
            }
        }
    }

    fn output(&self) -> Option<Self::Output> {
        self.role.decision()
    }

    fn msg_bytes(msg: &Self::Msg) -> usize {
        R::msg_bytes(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choreo::global::{
        GlobalProtocol, ModelClass, Participation, PhaseExit, PhaseSpec, RoleSpec,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsbt_random::Assignment;
    use rsbt_sim::runner::run_nodes_with;
    use rsbt_sim::Model;

    /// Posts its bit once, then decides on how many posts it saw.
    #[derive(Default)]
    struct CountRole {
        decided: Option<usize>,
    }

    impl BoardRole for CountRole {
        type Msg = bool;
        type Output = usize;

        fn step(&mut self, ctx: RoundCtx, board: BoardView<'_, bool>) -> BoardAction<bool> {
            if ctx.round == 1 {
                BoardAction::Post(ctx.bit)
            } else {
                self.decided = Some(board.len());
                BoardAction::Silent
            }
        }

        fn decision(&self) -> Option<usize> {
            self.decided
        }
    }

    fn count_global() -> GlobalProtocol {
        GlobalProtocol {
            name: "count",
            model: ModelClass::Blackboard,
            participation: Participation::Full,
            roles: vec![RoleSpec {
                name: "node",
                min_count: 1,
            }],
            phases: vec![PhaseSpec {
                name: "count",
                actions: vec![("node", vec![super::ActionKind::Post])],
                exit: PhaseExit::Decision,
            }],
        }
    }

    #[test]
    fn board_machine_runs_under_projection() {
        let alpha = Assignment::private(3);
        let projection = count_global().project(&Model::Blackboard, 3).unwrap();
        let nodes: Vec<_> = (0..3)
            .map(|_| BoardMachine::new(CountRole::default(), projection.local("node").clone()))
            .collect();
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_nodes_with(
            &Model::Blackboard,
            &alpha,
            5,
            nodes,
            &mut rng,
            projection.options(),
        );
        assert!(out.completed);
        assert!(out.outputs.iter().all(|o| *o == Some(2)));
        assert_eq!(out.stats.posts, 3);
    }

    /// A role that posts in a phase where the projection forbids it.
    struct RebelRole;

    impl BoardRole for RebelRole {
        type Msg = bool;
        type Output = ();

        fn step(&mut self, _ctx: RoundCtx, _board: BoardView<'_, bool>) -> BoardAction<bool> {
            BoardAction::Post(true)
        }

        fn decision(&self) -> Option<()> {
            None
        }

        fn phase(&self) -> usize {
            1 // claims to be in a phase that does not exist
        }
    }

    #[test]
    #[should_panic(expected = "violates the projection")]
    fn machine_rejects_undeclared_emission() {
        let projection = count_global().project(&Model::Blackboard, 2).unwrap();
        let nodes: Vec<_> = (0..2)
            .map(|_| BoardMachine::new(RebelRole, projection.local("node").clone()))
            .collect();
        let alpha = Assignment::private(2);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = run_nodes_with(
            &Model::Blackboard,
            &alpha,
            3,
            nodes,
            &mut rng,
            Default::default(),
        );
    }
}
