//! Choreographic protocol layer: one global description, three backends.
//!
//! A protocol is written once as a [`GlobalProtocol`] — its rounds,
//! message actions, and exit conditions for every role — and *projected*
//! onto a concrete [`Model`](rsbt_sim::Model) and system size. Projection
//! validates the description (totality of roles per phase, action/model
//! compatibility, participation discipline) and yields per-role
//! [`LocalSpec`](global::LocalSpec)s that the typed machines in
//! [`machine`] enforce at run time: a role that emits an action its
//! projection does not allow panics with protocol/role/phase context
//! instead of silently diverging from the paper.
//!
//! The same projected protocol then runs on any of three backends
//! ([`backend`]):
//!
//! - [`SimBackend`](backend::SimBackend) — the in-process lockstep
//!   simulator ([`rsbt_sim::runner`]), bit-identical to the legacy
//!   hand-rolled nodes under the same RNG stream;
//! - [`McBackend`](backend::McBackend) — protocol-level Monte-Carlo
//!   estimation with per-sample [`StreamRng`](rand::StreamRng) streams
//!   and Wilson confidence intervals, thread-count invariant;
//! - [`SocketBackend`](backend::SocketBackend) — real processes (or
//!   threads) over local TCP via [`rsbt_sim::net`], with a coordinator
//!   distributing assignment bits and enforcing round barriers.
//!
//! [`protocols`] ports all of the paper's protocols onto this layer.

pub mod backend;
pub mod global;
pub mod machine;
pub mod protocols;

pub use backend::{
    Backend, BackendError, BackendReport, Choreography, KillPlan, Launcher, McBackend, NodeMsg,
    NodeOutput, ProtocolEstimate, RunJob, SimBackend, SocketBackend, SpawnFn,
};
pub use global::{
    ActionKind, GlobalProtocol, LocalPhase, LocalSpec, ModelClass, Participation, PhaseExit,
    PhaseSpec, Projection, ProjectionError, RoleSpec,
};
pub use machine::{
    AnyAction, BoardAction, BoardMachine, BoardRole, DualMachine, DualRole, PortAction,
    PortMachine, PortRole, View,
};
pub use protocols::{
    consensus_choreo, consensus_shared_solver, registered_globals, BleChoreo, BleRole,
    DeputyChoreo, DeputyElectRole, EuclidChoreo, EuclidRole, KLeaderChoreo, KLeaderRole,
    MatchingChoreo, MatchingRole, ReductionChoreo, ReductionRole, SharedSolver, WsbChoreo, WsbRole,
};
