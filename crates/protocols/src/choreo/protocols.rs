//! The paper's protocols as choreographies: global descriptions plus
//! projected role implementations.
//!
//! Each protocol here is a port of the corresponding hand-rolled node in
//! the crate root onto the choreography layer: the *logic* is identical
//! round for round (the equivalence test suite pins bit-identical
//! [`RunOutcome`](rsbt_sim::runner::RunOutcome)s under a shared RNG
//! stream), but the send/receive discipline is now declared once in a
//! [`GlobalProtocol`] and enforced by the projected machines instead of
//! living implicitly in each `round()` body.

use std::collections::BTreeMap;
use std::sync::Arc;

use rsbt_sim::net::Wire;
use rsbt_sim::runner::{BoardView, Incoming, Outgoing, PortsView, Protocol, RoundCtx};
use rsbt_sim::Model;

use super::backend::Choreography;
use super::global::{
    ActionKind, GlobalProtocol, ModelClass, Participation, PhaseExit, PhaseSpec, Projection,
    RoleSpec,
};
use super::machine::{
    AnyAction, BoardAction, BoardMachine, BoardRole, DualMachine, DualRole, PortAction,
    PortMachine, PortRole, View,
};
use crate::deputy_bb::DeputyRole;
use crate::euclid_le::EuclidMsg;
use crate::matching::{MatchMsg, MatchStatus};
use crate::reduction::ReductionMsg;
use crate::role::Role;

/// The shared single-role, single-phase, full-participation shape of the
/// blackboard election protocols.
fn board_election_global(name: &'static str) -> GlobalProtocol {
    GlobalProtocol {
        name,
        model: ModelClass::Blackboard,
        participation: Participation::Full,
        roles: vec![RoleSpec {
            name: "node",
            min_count: 1,
        }],
        phases: vec![PhaseSpec {
            name: "elect",
            actions: vec![("node", vec![ActionKind::Post])],
            exit: PhaseExit::Decision,
        }],
    }
}

// ---------------------------------------------------------------------------
// Blackboard leader election (Theorem 4.1)
// ---------------------------------------------------------------------------

/// Projected role of [`crate::BlackboardLeaderElection`].
#[derive(Clone, Debug, Default)]
pub struct BleRole {
    history: Vec<bool>,
    decided: Option<Role>,
}

impl BoardRole for BleRole {
    type Msg = Vec<bool>;
    type Output = Role;

    fn step(&mut self, ctx: RoundCtx, board: BoardView<'_, Vec<bool>>) -> BoardAction<Vec<bool>> {
        if ctx.round > 1 {
            let mine: Vec<bool> = self.history.clone();
            let mut all: Vec<&Vec<bool>> = board.iter().collect();
            all.push(&mine);
            all.sort();
            // Lexicographically smallest string occurring exactly once.
            let winner = all
                .iter()
                .enumerate()
                .find(|(i, s)| {
                    let prev_same = *i > 0 && all[i - 1] == **s;
                    let next_same = *i + 1 < all.len() && all[i + 1] == **s;
                    !prev_same && !next_same
                })
                .map(|(_, s)| (*s).clone());
            if let Some(w) = winner {
                self.decided = Some(if w == mine {
                    Role::Leader
                } else {
                    Role::Follower
                });
                return BoardAction::Silent;
            }
        } else if ctx.n == 1 {
            self.decided = Some(Role::Leader);
            return BoardAction::Silent;
        }
        self.history.push(ctx.bit);
        BoardAction::Post(self.history.clone())
    }

    fn decision(&self) -> Option<Role> {
        self.decided
    }

    fn msg_bytes(msg: &Vec<bool>) -> usize {
        msg.wire_len()
    }
}

/// Blackboard leader election as a choreography.
#[derive(Clone, Copy, Debug, Default)]
pub struct BleChoreo;

impl Choreography for BleChoreo {
    type Node = BoardMachine<BleRole>;

    fn name(&self) -> &'static str {
        "blackboard-le"
    }

    fn global(&self) -> GlobalProtocol {
        board_election_global("blackboard-le")
    }

    fn node(&self, _index: usize, _model: &Model, projection: &Projection) -> Self::Node {
        BoardMachine::new(BleRole::default(), projection.local("node").clone())
    }
}

// ---------------------------------------------------------------------------
// Blackboard k-leader election
// ---------------------------------------------------------------------------

/// Projected role of [`crate::KLeaderBlackboard`].
#[derive(Clone, Debug)]
pub struct KLeaderRole {
    k: usize,
    history: Vec<bool>,
    decided: Option<Role>,
}

impl KLeaderRole {
    /// A fresh node for the exactly-`k`-leaders task.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need k ≥ 1");
        KLeaderRole {
            k,
            history: Vec::new(),
            decided: None,
        }
    }

    fn choose_classes(sizes: &[usize], k: usize) -> Option<Vec<usize>> {
        fn rec(sizes: &[usize], k: usize, from: usize, chosen: &mut Vec<usize>) -> bool {
            if k == 0 {
                return true;
            }
            for i in from..sizes.len() {
                if sizes[i] <= k {
                    chosen.push(i);
                    if rec(sizes, k - sizes[i], i + 1, chosen) {
                        return true;
                    }
                    chosen.pop();
                }
            }
            false
        }
        let mut chosen = Vec::new();
        rec(sizes, k, 0, &mut chosen).then_some(chosen)
    }
}

impl BoardRole for KLeaderRole {
    type Msg = Vec<bool>;
    type Output = Role;

    fn step(&mut self, ctx: RoundCtx, board: BoardView<'_, Vec<bool>>) -> BoardAction<Vec<bool>> {
        if ctx.round > 1 {
            let mine = self.history.clone();
            let mut all: Vec<&Vec<bool>> = board.iter().collect();
            all.push(&mine);
            all.sort();
            let mut reps: Vec<&Vec<bool>> = Vec::new();
            let mut sizes: Vec<usize> = Vec::new();
            for s in &all {
                match reps.last() {
                    Some(last) if *last == *s => *sizes.last_mut().expect("non-empty") += 1,
                    _ => {
                        reps.push(s);
                        sizes.push(1);
                    }
                }
            }
            if let Some(chosen) = KLeaderRole::choose_classes(&sizes, self.k) {
                let my_class = reps
                    .iter()
                    .position(|r| **r == mine)
                    .expect("own string present");
                self.decided = Some(if chosen.contains(&my_class) {
                    Role::Leader
                } else {
                    Role::Follower
                });
                return BoardAction::Silent;
            }
        } else if ctx.n == 1 && self.k == 1 {
            self.decided = Some(Role::Leader);
            return BoardAction::Silent;
        }
        self.history.push(ctx.bit);
        BoardAction::Post(self.history.clone())
    }

    fn decision(&self) -> Option<Role> {
        self.decided
    }

    fn msg_bytes(msg: &Vec<bool>) -> usize {
        msg.wire_len()
    }
}

/// Blackboard exactly-`k`-leaders election as a choreography.
#[derive(Clone, Copy, Debug)]
pub struct KLeaderChoreo {
    /// Number of leaders to elect.
    pub k: usize,
}

impl Choreography for KLeaderChoreo {
    type Node = BoardMachine<KLeaderRole>;

    fn name(&self) -> &'static str {
        "k-leader-bb"
    }

    fn global(&self) -> GlobalProtocol {
        board_election_global("k-leader-bb")
    }

    fn node(&self, _index: usize, _model: &Model, projection: &Projection) -> Self::Node {
        BoardMachine::new(KLeaderRole::new(self.k), projection.local("node").clone())
    }
}

// ---------------------------------------------------------------------------
// Blackboard weak symmetry breaking
// ---------------------------------------------------------------------------

/// Projected role of [`crate::WeakSymmetryBreakingBlackboard`].
#[derive(Clone, Debug, Default)]
pub struct WsbRole {
    history: Vec<bool>,
    decided: Option<u8>,
}

impl BoardRole for WsbRole {
    type Msg = Vec<bool>;
    type Output = u8;

    fn step(&mut self, ctx: RoundCtx, board: BoardView<'_, Vec<bool>>) -> BoardAction<Vec<bool>> {
        if ctx.round > 1 {
            let mine = self.history.clone();
            let min = board.iter().min().map_or(&mine, |m| m.min(&mine));
            let max = board.iter().max().map_or(&mine, |m| m.max(&mine));
            if min != max {
                self.decided = Some(u8::from(mine != *min));
                return BoardAction::Silent;
            }
        }
        self.history.push(ctx.bit);
        BoardAction::Post(self.history.clone())
    }

    fn decision(&self) -> Option<u8> {
        self.decided
    }

    fn msg_bytes(msg: &Vec<bool>) -> usize {
        msg.wire_len()
    }
}

/// Blackboard weak symmetry breaking as a choreography.
#[derive(Clone, Copy, Debug, Default)]
pub struct WsbChoreo;

impl Choreography for WsbChoreo {
    type Node = BoardMachine<WsbRole>;

    fn name(&self) -> &'static str {
        "wsb-bb"
    }

    fn global(&self) -> GlobalProtocol {
        board_election_global("wsb-bb")
    }

    fn node(&self, _index: usize, _model: &Model, projection: &Projection) -> Self::Node {
        BoardMachine::new(WsbRole::default(), projection.local("node").clone())
    }
}

// ---------------------------------------------------------------------------
// Blackboard leader-and-deputy election
// ---------------------------------------------------------------------------

/// Projected role of [`crate::LeaderAndDeputyBlackboard`].
#[derive(Clone, Debug, Default)]
pub struct DeputyElectRole {
    history: Vec<bool>,
    decided: Option<DeputyRole>,
}

impl BoardRole for DeputyElectRole {
    type Msg = Vec<bool>;
    type Output = DeputyRole;

    fn step(&mut self, ctx: RoundCtx, board: BoardView<'_, Vec<bool>>) -> BoardAction<Vec<bool>> {
        if ctx.round > 1 {
            let mine = self.history.clone();
            let mut all: Vec<&Vec<bool>> = board.iter().collect();
            all.push(&mine);
            all.sort();
            let uniques: Vec<&Vec<bool>> = all
                .iter()
                .enumerate()
                .filter(|(i, s)| {
                    let prev_same = *i > 0 && all[i - 1] == **s;
                    let next_same = *i + 1 < all.len() && all[i + 1] == **s;
                    !prev_same && !next_same
                })
                .map(|(_, s)| *s)
                .collect();
            if uniques.len() >= 2 {
                self.decided = Some(if mine == *uniques[0] {
                    DeputyRole::Leader
                } else if mine == *uniques[1] {
                    DeputyRole::Deputy
                } else {
                    DeputyRole::Follower
                });
                return BoardAction::Silent;
            }
        }
        self.history.push(ctx.bit);
        BoardAction::Post(self.history.clone())
    }

    fn decision(&self) -> Option<DeputyRole> {
        self.decided
    }

    fn msg_bytes(msg: &Vec<bool>) -> usize {
        msg.wire_len()
    }
}

/// Blackboard leader-and-deputy election as a choreography.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeputyChoreo;

impl Choreography for DeputyChoreo {
    type Node = BoardMachine<DeputyElectRole>;

    fn name(&self) -> &'static str {
        "deputy-bb"
    }

    fn global(&self) -> GlobalProtocol {
        board_election_global("deputy-bb")
    }

    fn node(&self, _index: usize, _model: &Model, projection: &Projection) -> Self::Node {
        BoardMachine::new(DeputyElectRole::default(), projection.local("node").clone())
    }
}

// ---------------------------------------------------------------------------
// Euclid leader election (Theorem 4.2)
// ---------------------------------------------------------------------------

/// Projected role of [`crate::EuclidLeaderElection`]: discovery phase
/// (broadcast histories until `k` distinct strings freeze the groups),
/// then the subtractive Euclid loop of matchings.
#[derive(Clone, Debug)]
pub struct EuclidRole {
    k: usize,
    history: Vec<bool>,
    freeze_round: Option<usize>,
    my_group: usize,
    port_group: Vec<usize>,
    port_active: Vec<bool>,
    self_active: bool,
    sizes: Vec<usize>,
    pair: Option<(usize, usize)>,
    matched_self: bool,
    matched_a_count: usize,
    bit_buffer: Vec<bool>,
    decided: Option<Role>,
}

impl EuclidRole {
    /// A fresh node expecting `k` distinct randomness sources.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "at least one source");
        EuclidRole {
            k,
            history: Vec::new(),
            freeze_round: None,
            my_group: 0,
            port_group: Vec::new(),
            port_active: Vec::new(),
            self_active: true,
            sizes: Vec::new(),
            pair: None,
            matched_self: false,
            matched_a_count: 0,
            bit_buffer: Vec::new(),
            decided: None,
        }
    }

    fn select_pair(&self) -> Option<(usize, usize)> {
        let mut live: Vec<usize> = (0..self.sizes.len())
            .filter(|&g| self.sizes[g] > 0)
            .collect();
        live.sort_by_key(|&g| (self.sizes[g], g));
        match live.as_slice() {
            [a, b, ..] => Some((*a, *b)),
            _ => None,
        }
    }

    fn winner_group(&self) -> Option<usize> {
        (0..self.sizes.len()).find(|&g| self.sizes[g] == 1)
    }

    fn try_decide(&mut self) -> bool {
        if let Some(g) = self.winner_group() {
            self.decided = Some(if self.self_active && self.my_group == g {
                Role::Leader
            } else {
                Role::Follower
            });
            true
        } else {
            false
        }
    }

    fn next_iteration(&mut self) -> bool {
        if self.try_decide() {
            return true;
        }
        self.pair = self.select_pair();
        self.matched_self = false;
        self.matched_a_count = 0;
        false
    }

    fn draw_index(&mut self, m: usize) -> Option<usize> {
        if m == 1 {
            return Some(0);
        }
        let needed = usize::BITS as usize - (m - 1).leading_zeros() as usize;
        if self.bit_buffer.len() < needed {
            return None;
        }
        let bits: Vec<bool> = self.bit_buffer.drain(..needed).collect();
        let v = bits
            .iter()
            .fold(0usize, |acc, &b| acc << 1 | usize::from(b));
        (v < m).then_some(v)
    }

    fn active_ports_of_group(&self, g: usize) -> Vec<usize> {
        self.port_group
            .iter()
            .zip(&self.port_active)
            .enumerate()
            .filter(|(_, (pg, act))| **pg == g && **act)
            .map(|(i, _)| i + 1)
            .collect()
    }

    fn discovery_step(
        &mut self,
        ctx: RoundCtx,
        ports: &[Option<EuclidMsg>],
    ) -> PortAction<EuclidMsg> {
        if ctx.n == 1 {
            self.decided = Some(Role::Leader);
            return PortAction::Silent;
        }
        if ctx.round > 1 {
            let others: Vec<Vec<bool>> = ports
                .iter()
                .map(|m| match m {
                    Some(EuclidMsg::Hist(h)) => h.clone(),
                    other => panic!("discovery expects Hist, got {other:?}"),
                })
                .collect();
            let mine = self.history.clone();
            let mut distinct: Vec<&Vec<bool>> =
                others.iter().chain(std::iter::once(&mine)).collect();
            distinct.sort();
            distinct.dedup();
            if distinct.len() == self.k {
                self.my_group = distinct.binary_search(&&mine).expect("present");
                self.port_group = others
                    .iter()
                    .map(|s| distinct.binary_search(&s).expect("present"))
                    .collect();
                self.port_active = vec![true; ports.len()];
                self.sizes = vec![0; self.k];
                self.sizes[self.my_group] += 1;
                for &g in &self.port_group {
                    self.sizes[g] += 1;
                }
                self.freeze_round = Some(ctx.round);
                self.next_iteration();
                return PortAction::Silent;
            }
        }
        self.history.push(ctx.bit);
        PortAction::Broadcast(EuclidMsg::Hist(self.history.clone()))
    }

    fn matching_step(
        &mut self,
        ctx: RoundCtx,
        ports: &[Option<EuclidMsg>],
    ) -> PortAction<EuclidMsg> {
        self.bit_buffer.push(ctx.bit);
        let freeze = self.freeze_round.expect("frozen");
        let (ga, gb) = match self.pair {
            Some(p) => p,
            None => return PortAction::Silent, // stuck: gcd > 1 dead end
        };
        match (ctx.round - freeze - 1) % 3 {
            0 => {
                self.matched_a_count += ports
                    .iter()
                    .filter(|m| **m == Some(EuclidMsg::AnnA))
                    .count();
                if self.matched_a_count >= self.sizes[ga] {
                    self.sizes[gb] -= self.sizes[ga];
                    if self.next_iteration() {
                        return PortAction::Silent;
                    }
                }
                let (ga, gb) = match self.pair {
                    Some(p) => p,
                    None => return PortAction::Silent, // gcd > 1 dead end
                };
                if self.self_active && self.my_group == ga && !self.matched_self {
                    let targets = self.active_ports_of_group(gb);
                    debug_assert!(!targets.is_empty(), "B side exhausted prematurely");
                    if let Some(i) = self.draw_index(targets.len()) {
                        return PortAction::Send(vec![(targets[i], EuclidMsg::Req)]);
                    }
                }
                PortAction::Silent
            }
            1 => {
                if self.self_active && self.my_group == gb && !self.matched_self {
                    let requesters: Vec<usize> = ports
                        .iter()
                        .enumerate()
                        .filter(|(_, m)| **m == Some(EuclidMsg::Req))
                        .map(|(i, _)| i + 1)
                        .collect();
                    if let Some(&min_port) = requesters.first() {
                        self.matched_self = true;
                        self.self_active = false;
                        let mut out = vec![(min_port, EuclidMsg::Ack)];
                        for p in 1..ctx.n {
                            if p != min_port {
                                out.push((p, EuclidMsg::AnnB));
                            }
                        }
                        return PortAction::Send(out);
                    }
                }
                PortAction::Silent
            }
            _ => {
                let mut acked = false;
                for (i, m) in ports.iter().enumerate() {
                    match m {
                        Some(EuclidMsg::Ack) => {
                            acked = true;
                            self.port_active[i] = false;
                        }
                        Some(EuclidMsg::AnnB) => {
                            self.port_active[i] = false;
                        }
                        _ => {}
                    }
                }
                if acked && self.self_active && self.my_group == ga && !self.matched_self {
                    self.matched_self = true;
                    self.matched_a_count += 1;
                    return PortAction::Broadcast(EuclidMsg::AnnA);
                }
                PortAction::Silent
            }
        }
    }
}

impl PortRole for EuclidRole {
    type Msg = EuclidMsg;
    type Output = Role;

    fn step(&mut self, ctx: RoundCtx, ports: PortsView<'_, EuclidMsg>) -> PortAction<EuclidMsg> {
        if self.freeze_round.is_none() {
            self.discovery_step(ctx, &ports)
        } else {
            self.matching_step(ctx, &ports)
        }
    }

    fn decision(&self) -> Option<Role> {
        self.decided
    }

    fn phase(&self) -> usize {
        usize::from(self.freeze_round.is_some())
    }

    fn msg_bytes(msg: &EuclidMsg) -> usize {
        msg.wire_len()
    }
}

/// Euclid leader election as a choreography.
#[derive(Clone, Copy, Debug)]
pub struct EuclidChoreo {
    /// Number of randomness sources (common knowledge).
    pub k: usize,
}

impl Choreography for EuclidChoreo {
    type Node = PortMachine<EuclidRole>;

    fn name(&self) -> &'static str {
        "euclid-le"
    }

    fn global(&self) -> GlobalProtocol {
        GlobalProtocol {
            name: "euclid-le",
            model: ModelClass::MessagePassing,
            participation: Participation::Sparse,
            roles: vec![RoleSpec {
                name: "node",
                min_count: 1,
            }],
            phases: vec![
                PhaseSpec {
                    name: "discovery",
                    actions: vec![("node", vec![ActionKind::Broadcast])],
                    exit: PhaseExit::Guard("k distinct strings observed"),
                },
                PhaseSpec {
                    name: "euclid-loop",
                    actions: vec![("node", vec![ActionKind::Send, ActionKind::Broadcast])],
                    exit: PhaseExit::Decision,
                },
            ],
        }
    }

    fn node(&self, _index: usize, _model: &Model, projection: &Projection) -> Self::Node {
        PortMachine::new(EuclidRole::new(self.k), projection.local("node").clone())
    }
}

// ---------------------------------------------------------------------------
// CreateMatching (Algorithm 1)
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MatchSide {
    A,
    B,
    Bystander,
}

/// Projected role of [`crate::matching::CreateMatching`]. The same state
/// machine serves all three global roles; the projection assigns each
/// node the local spec of its side.
#[derive(Clone, Debug)]
pub struct MatchingRole {
    side: MatchSide,
    a_total: usize,
    active_b_ports: Vec<usize>,
    bit_buffer: Vec<bool>,
    matched_self: bool,
    matched_count: usize,
    decided: Option<MatchStatus>,
}

impl MatchingRole {
    /// An `A`-side node; `b_ports` are its ports into `B`.
    pub fn new_a(a_total: usize, b_ports: Vec<usize>) -> Self {
        assert!(a_total >= 1, "matching needs a non-empty A side");
        assert!(
            b_ports.len() >= a_total,
            "CreateMatching requires |A| ≤ |B|"
        );
        MatchingRole {
            side: MatchSide::A,
            a_total,
            active_b_ports: b_ports,
            bit_buffer: Vec::new(),
            matched_self: false,
            matched_count: 0,
            decided: None,
        }
    }

    /// A `B`-side node.
    pub fn new_b(a_total: usize) -> Self {
        MatchingRole {
            side: MatchSide::B,
            a_total,
            active_b_ports: Vec::new(),
            bit_buffer: Vec::new(),
            matched_self: false,
            matched_count: 0,
            decided: None,
        }
    }

    /// A node in neither group.
    pub fn bystander(a_total: usize) -> Self {
        MatchingRole {
            side: MatchSide::Bystander,
            a_total,
            active_b_ports: Vec::new(),
            bit_buffer: Vec::new(),
            matched_self: false,
            matched_count: 0,
            decided: None,
        }
    }

    fn draw_index(&mut self, m: usize) -> Option<usize> {
        if m == 1 {
            return Some(0);
        }
        let needed = usize::BITS as usize - (m - 1).leading_zeros() as usize;
        if self.bit_buffer.len() < needed {
            return None;
        }
        let bits: Vec<bool> = self.bit_buffer.drain(..needed).collect();
        let v = bits
            .iter()
            .fold(0usize, |acc, &b| acc << 1 | usize::from(b));
        (v < m).then_some(v)
    }

    fn finish(&mut self) {
        self.decided = Some(match self.side {
            MatchSide::A => MatchStatus::Matched,
            MatchSide::B => {
                if self.matched_self {
                    MatchStatus::Matched
                } else {
                    MatchStatus::Unmatched
                }
            }
            MatchSide::Bystander => MatchStatus::Bystander,
        });
    }
}

impl PortRole for MatchingRole {
    type Msg = MatchMsg;
    type Output = MatchStatus;

    fn step(&mut self, ctx: RoundCtx, ports: PortsView<'_, MatchMsg>) -> PortAction<MatchMsg> {
        self.bit_buffer.push(ctx.bit);
        match (ctx.round - 1) % 3 {
            0 => {
                self.matched_count += ports.iter().filter(|m| **m == Some(MatchMsg::AnnA)).count();
                if self.matched_count >= self.a_total {
                    self.finish();
                    return PortAction::Silent;
                }
                if self.side == MatchSide::A && !self.matched_self {
                    let m = self.active_b_ports.len();
                    debug_assert!(m > 0, "A-node ran out of active B targets");
                    if let Some(i) = self.draw_index(m) {
                        return PortAction::Send(vec![(self.active_b_ports[i], MatchMsg::Req)]);
                    }
                }
                PortAction::Silent
            }
            1 => {
                if self.side == MatchSide::B && !self.matched_self {
                    let requesters: Vec<usize> = ports
                        .iter()
                        .enumerate()
                        .filter(|(_, m)| **m == Some(MatchMsg::Req))
                        .map(|(i, _)| i + 1)
                        .collect();
                    if let Some(&min_port) = requesters.first() {
                        self.matched_self = true;
                        let mut out = vec![(min_port, MatchMsg::Ack)];
                        for p in 1..ctx.n {
                            if p != min_port {
                                out.push((p, MatchMsg::AnnB));
                            }
                        }
                        return PortAction::Send(out);
                    }
                }
                PortAction::Silent
            }
            _ => {
                let mut acked = false;
                for (i, m) in ports.iter().enumerate() {
                    match m {
                        Some(MatchMsg::Ack) => {
                            acked = true;
                            self.active_b_ports.retain(|&p| p != i + 1);
                        }
                        Some(MatchMsg::AnnB) => {
                            self.active_b_ports.retain(|&p| p != i + 1);
                        }
                        _ => {}
                    }
                }
                if acked && self.side == MatchSide::A {
                    self.matched_self = true;
                    self.matched_count += 1;
                    if self.matched_count >= self.a_total {
                        self.finish();
                    }
                    return PortAction::Broadcast(MatchMsg::AnnA);
                }
                PortAction::Silent
            }
        }
    }

    fn decision(&self) -> Option<MatchStatus> {
        self.decided
    }

    fn msg_bytes(msg: &MatchMsg) -> usize {
        msg.wire_len()
    }
}

/// Algorithm 1 (`CreateMatching`) as a choreography: the first `a` nodes
/// are side `A`, the next `b` are side `B`, the rest are bystanders.
#[derive(Clone, Copy, Debug)]
pub struct MatchingChoreo {
    /// Size of side `A` (`a ≤ b`).
    pub a: usize,
    /// Size of side `B`.
    pub b: usize,
}

impl Choreography for MatchingChoreo {
    type Node = PortMachine<MatchingRole>;

    fn name(&self) -> &'static str {
        "create-matching"
    }

    fn global(&self) -> GlobalProtocol {
        GlobalProtocol {
            name: "create-matching",
            model: ModelClass::MessagePassing,
            participation: Participation::Sparse,
            roles: vec![
                RoleSpec {
                    name: "a",
                    min_count: 1,
                },
                RoleSpec {
                    name: "b",
                    min_count: 1,
                },
                RoleSpec {
                    name: "bystander",
                    min_count: 0,
                },
            ],
            phases: vec![PhaseSpec {
                name: "match",
                actions: vec![
                    ("a", vec![ActionKind::Send, ActionKind::Broadcast]),
                    ("b", vec![ActionKind::Send]),
                    ("bystander", vec![]),
                ],
                exit: PhaseExit::Decision,
            }],
        }
    }

    fn node(&self, index: usize, model: &Model, projection: &Projection) -> Self::Node {
        let ports = model.ports().expect("matching runs under message passing");
        if index < self.a {
            let b_ports: Vec<usize> = (self.a..self.a + self.b)
                .map(|target| ports.port_towards(index, target))
                .collect();
            PortMachine::new(
                MatchingRole::new_a(self.a, b_ports),
                projection.local("a").clone(),
            )
        } else if index < self.a + self.b {
            PortMachine::new(MatchingRole::new_b(self.a), projection.local("b").clone())
        } else {
            PortMachine::new(
                MatchingRole::bystander(self.a),
                projection.local("bystander").clone(),
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Appendix C reduction (ViaLeader) and consensus
// ---------------------------------------------------------------------------

/// The centralized solver of the reduction, shareable across threads (the
/// Monte-Carlo backend builds nodes from worker threads, so unlike the
/// legacy [`crate::reduction::TableSolver`] this one is `Send + Sync`).
pub type SharedSolver = Arc<dyn Fn(&[u64]) -> BTreeMap<u64, u64> + Send + Sync>;

/// Projected role of [`crate::reduction::ViaLeader`]: run the inner
/// election, publish inputs, leader publishes the table, decide.
pub struct ReductionRole<N: Protocol<Output = Role>> {
    inner: N,
    input: u64,
    solver: SharedSolver,
    elected_round: Option<usize>,
    inputs_seen: Option<Vec<u64>>,
    output: Option<u64>,
    current_phase: usize,
}

impl<N: Protocol<Output = Role>> std::fmt::Debug for ReductionRole<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReductionRole")
            .field("input", &self.input)
            .field("elected_round", &self.elected_round)
            .field("output", &self.output)
            .finish_non_exhaustive()
    }
}

impl<N: Protocol<Output = Role>> ReductionRole<N> {
    /// Wraps an inner election node with this node's input and solver.
    pub fn new(inner: N, input: u64, solver: SharedSolver) -> Self {
        ReductionRole {
            inner,
            input,
            solver,
            elected_round: None,
            inputs_seen: None,
            output: None,
            current_phase: 0,
        }
    }
}

/// Re-publishes a task message under whichever model is running.
fn publish<M: Clone + Ord + std::fmt::Debug>(
    view: &View<'_, ReductionMsg<M>>,
    msg: ReductionMsg<M>,
) -> AnyAction<ReductionMsg<M>> {
    match view {
        View::Board(_) => AnyAction::Post(msg),
        View::Ports(_) => AnyAction::Broadcast(msg),
    }
}

/// Collects incoming task messages matching `f`, model-agnostically.
fn collect<M, T>(
    view: &View<'_, ReductionMsg<M>>,
    f: impl Fn(&ReductionMsg<M>) -> Option<T>,
) -> Vec<T>
where
    M: Clone + Ord + std::fmt::Debug,
{
    match view {
        View::Board(msgs) => msgs.iter().filter_map(f).collect(),
        View::Ports(slots) => slots.iter().flatten().filter_map(f).collect(),
    }
}

/// Rebuilds the inner protocol's incoming view from the reduction's.
fn project_inner<M: Clone + Ord + std::fmt::Debug>(
    view: &View<'_, ReductionMsg<M>>,
) -> Incoming<M> {
    match view {
        View::Board(msgs) => Incoming::Board(
            msgs.iter()
                .filter_map(|m| match m {
                    ReductionMsg::Inner(x) => Some(x.clone()),
                    _ => None,
                })
                .collect(),
        ),
        View::Ports(slots) => Incoming::Ports(
            slots
                .iter()
                .map(|s| match s {
                    Some(ReductionMsg::Inner(x)) => Some(x.clone()),
                    _ => None,
                })
                .collect(),
        ),
    }
}

/// Lifts the inner protocol's outgoing messages into the reduction
/// alphabet.
fn lift_inner<M: Clone + Ord + std::fmt::Debug>(out: Outgoing<M>) -> AnyAction<ReductionMsg<M>> {
    match out {
        Outgoing::Silent => AnyAction::Silent,
        Outgoing::Post(m) => AnyAction::Post(ReductionMsg::Inner(m)),
        Outgoing::Send(v) => AnyAction::Send(
            v.into_iter()
                .map(|(p, m)| (p, ReductionMsg::Inner(m)))
                .collect(),
        ),
        Outgoing::Broadcast(m) => AnyAction::Broadcast(ReductionMsg::Inner(m)),
    }
}

impl<N: Protocol<Output = Role>> DualRole for ReductionRole<N>
where
    N::Msg: Wire,
{
    type Msg = ReductionMsg<N::Msg>;
    type Output = u64;

    fn step(&mut self, ctx: RoundCtx, view: View<'_, Self::Msg>) -> AnyAction<Self::Msg> {
        // Phase 0: run the inner election until it decides.
        let elected_round = match self.elected_round {
            None => {
                let inner_incoming = project_inner(&view);
                let out = self.inner.round(ctx, &inner_incoming);
                if self.inner.output().is_some() {
                    self.elected_round = Some(ctx.round);
                    self.current_phase = 1;
                }
                return lift_inner(out);
            }
            Some(r) => r,
        };
        // Phase 1: publish the input.
        if ctx.round == elected_round + 1 {
            self.current_phase = 2;
            return publish(&view, ReductionMsg::Input(self.input));
        }
        // Phase 2: the leader publishes the table.
        if ctx.round == elected_round + 2 {
            let mut inputs: Vec<u64> = collect(&view, |m| match m {
                ReductionMsg::Input(v) => Some(*v),
                _ => None,
            });
            inputs.push(self.input);
            inputs.sort_unstable();
            self.inputs_seen = Some(inputs.clone());
            self.current_phase = 3;
            if self.inner.output() == Some(Role::Leader) {
                let table: Vec<(u64, u64)> = (self.solver)(&inputs).into_iter().collect();
                return publish(&view, ReductionMsg::Table(table));
            }
            return AnyAction::Silent;
        }
        // Phase 3: read the table and decide.
        if ctx.round == elected_round + 3 && self.output.is_none() {
            let tables: Vec<Vec<(u64, u64)>> = collect(&view, |m| match m {
                ReductionMsg::Table(t) => Some(t.clone()),
                _ => None,
            });
            let table = if self.inner.output() == Some(Role::Leader) {
                let inputs = self.inputs_seen.as_ref().expect("phase 2 ran");
                (self.solver)(inputs).into_iter().collect()
            } else {
                tables.into_iter().next().expect("leader published a table")
            };
            let map: BTreeMap<u64, u64> = table.into_iter().collect();
            self.output = Some(*map.get(&self.input).expect("table covers all inputs"));
        }
        AnyAction::Silent
    }

    fn decision(&self) -> Option<u64> {
        self.output
    }

    fn phase(&self) -> usize {
        self.current_phase
    }

    fn msg_bytes(msg: &Self::Msg) -> usize {
        msg.wire_len()
    }
}

/// The Appendix C reduction as a choreography: any name-independent task
/// over an inner leader-election choreography.
pub struct ReductionChoreo<C: Choreography>
where
    C::Node: Protocol<Output = Role>,
{
    name: &'static str,
    inner: C,
    inputs: Vec<u64>,
    solver: SharedSolver,
}

impl<C: Choreography> ReductionChoreo<C>
where
    C::Node: Protocol<Output = Role>,
{
    /// Builds the reduction over `inner`, with per-node `inputs` and the
    /// centralized `solver`.
    pub fn new(name: &'static str, inner: C, inputs: Vec<u64>, solver: SharedSolver) -> Self {
        ReductionChoreo {
            name,
            inner,
            inputs,
            solver,
        }
    }
}

impl<C: Choreography> Choreography for ReductionChoreo<C>
where
    C::Node: Protocol<Output = Role>,
    <C::Node as Protocol>::Msg: Wire,
{
    type Node = DualMachine<ReductionRole<C::Node>>;

    fn name(&self) -> &'static str {
        self.name
    }

    fn global(&self) -> GlobalProtocol {
        GlobalProtocol {
            name: "via-leader",
            model: ModelClass::Any,
            participation: Participation::Sparse,
            roles: vec![RoleSpec {
                name: "node",
                min_count: 1,
            }],
            phases: vec![
                PhaseSpec {
                    name: "elect",
                    actions: vec![(
                        "node",
                        vec![ActionKind::Post, ActionKind::Send, ActionKind::Broadcast],
                    )],
                    exit: PhaseExit::Guard("inner election decided"),
                },
                PhaseSpec {
                    name: "publish-input",
                    actions: vec![("node", vec![ActionKind::Post, ActionKind::Broadcast])],
                    exit: PhaseExit::Rounds(1),
                },
                PhaseSpec {
                    name: "publish-table",
                    actions: vec![("node", vec![ActionKind::Post, ActionKind::Broadcast])],
                    exit: PhaseExit::Rounds(1),
                },
                PhaseSpec {
                    name: "decide",
                    actions: vec![("node", vec![])],
                    exit: PhaseExit::Decision,
                },
            ],
        }
    }

    fn node(&self, index: usize, model: &Model, projection: &Projection) -> Self::Node {
        let inner_projection = self
            .inner
            .global()
            .project(model, projection.n())
            .expect("inner election projects wherever the reduction does");
        let inner_node = self.inner.node(index, model, &inner_projection);
        DualMachine::new(
            ReductionRole::new(inner_node, self.inputs[index], self.solver.clone()),
            projection.local("node").clone(),
        )
    }
}

/// The consensus solver as a [`SharedSolver`]: every input maps to the
/// minimal input.
pub fn consensus_shared_solver() -> SharedSolver {
    Arc::new(|inputs: &[u64]| {
        let decision = *inputs.iter().min().expect("at least one input");
        inputs.iter().map(|&v| (v, decision)).collect()
    })
}

/// Consensus via the reduction over an inner election choreography.
pub fn consensus_choreo<C: Choreography>(inner: C, inputs: Vec<u64>) -> ReductionChoreo<C>
where
    C::Node: Protocol<Output = Role>,
{
    ReductionChoreo::new(
        "consensus-via-leader",
        inner,
        inputs,
        consensus_shared_solver(),
    )
}

/// Every global protocol registered on the choreography layer, one entry
/// per distinct [`GlobalProtocol`] description.
///
/// This is the enumeration hook for ahead-of-time analysis
/// (`rsbt-analyze`'s projection checker exhaustively projects each entry
/// across both model classes and an `n`-range): a choreography whose
/// global description is not returned here is invisible to the static
/// pass, so new protocols must be added to this list. Parameterized
/// choreographies contribute one representative — their `global()` does
/// not depend on the parameters (only `node()` does).
pub fn registered_globals() -> Vec<GlobalProtocol> {
    vec![
        BleChoreo.global(),
        WsbChoreo.global(),
        KLeaderChoreo { k: 2 }.global(),
        DeputyChoreo.global(),
        EuclidChoreo { k: 2 }.global(),
        MatchingChoreo { a: 1, b: 1 }.global(),
        consensus_choreo(BleChoreo, Vec::new()).global(),
    ]
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_names_are_distinct_and_validate() {
        let globals = registered_globals();
        assert_eq!(globals.len(), 7);
        for (i, g) in globals.iter().enumerate() {
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name));
            assert!(
                globals[..i].iter().all(|h| h.name != g.name),
                "duplicate global name {}",
                g.name
            );
        }
    }

    #[test]
    fn registry_globals_match_choreography_accessors() {
        // The representative instances must return the very description a
        // backend would project: same name, model class, phase count.
        let from_registry = registered_globals();
        let direct = [
            BleChoreo.global(),
            WsbChoreo.global(),
            KLeaderChoreo { k: 3 }.global(),
            DeputyChoreo.global(),
            EuclidChoreo { k: 3 }.global(),
            MatchingChoreo { a: 2, b: 3 }.global(),
            consensus_choreo(BleChoreo, vec![7, 7]).global(),
        ];
        for (r, d) in from_registry.iter().zip(direct.iter()) {
            assert_eq!(r.name, d.name);
            assert_eq!(r.model, d.model);
            assert_eq!(r.phases.len(), d.phases.len());
        }
    }
}
