//! The global-protocol AST and its projection onto per-role machines.
//!
//! A [`GlobalProtocol`] is one declarative description of a whole
//! protocol: which communication model it needs, which roles exist, and —
//! per phase — which message actions each role may emit and what makes the
//! phase end. [`GlobalProtocol::project`] validates the description
//! against a concrete [`Model`] and system size and derives one
//! [`LocalSpec`] per role; the specs parameterize the typed machines in
//! [`crate::choreo::machine`], which enforce the declared send/receive
//! discipline at runtime while the *model* discipline (a blackboard role
//! cannot read ports) is already fixed by the role trait's types.
//!
//! # Deadlock freedom
//!
//! Projection rejects every description in which some role could get
//! stuck waiting:
//!
//! * every declared role must have an action entry in **every** phase
//!   ([`ProjectionError::MissingRole`]) — no role is ever left without
//!   local behavior while others advance;
//! * every phase must end: either after a fixed number of rounds
//!   ([`PhaseExit::Rounds`]) or via a guard evaluated on *common*
//!   information — the shared board content or the common multiset of
//!   broadcast strings ([`PhaseExit::Guard`], [`PhaseExit::Decision`]).
//!   Since rounds are synchronous and guards are functions of data every
//!   node observes identically, all nodes leave a phase in the same round;
//! * the runner's lockstep semantics make communication *closed* per
//!   round: everything sent in round `r` is received in round `r + 1` and
//!   nothing else, so a projected machine never awaits a message that was
//!   never sent.

use std::fmt;

use rsbt_sim::runner::RunOptions;
use rsbt_sim::Model;

/// Which communication models a global protocol admits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelClass {
    /// Only the shared anonymous blackboard.
    Blackboard,
    /// Only port-labeled message passing.
    MessagePassing,
    /// Either model; per-model actions are filtered at projection time.
    Any,
}

impl ModelClass {
    /// Whether the concrete `model` belongs to this class.
    pub fn admits(self, model: &Model) -> bool {
        match self {
            ModelClass::Blackboard => model.is_blackboard(),
            ModelClass::MessagePassing => !model.is_blackboard(),
            ModelClass::Any => true,
        }
    }
}

impl fmt::Display for ModelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelClass::Blackboard => write!(f, "blackboard"),
            ModelClass::MessagePassing => write!(f, "message-passing"),
            ModelClass::Any => write!(f, "any model"),
        }
    }
}

/// Participation discipline of a blackboard protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Participation {
    /// Every undecided node posts exactly once per round; decided nodes
    /// are silent. Projection turns this into the runner's release-build
    /// invariant ([`RunOptions::full_participation`]).
    Full,
    /// Some nodes may stay silent while undecided (e.g. only the leader
    /// publishes the reduction table).
    Sparse,
}

/// A message-emitting action kind a role may perform. Staying silent is
/// always allowed and never declared.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ActionKind {
    /// Append a message to the blackboard.
    Post,
    /// Send per-port messages (message passing).
    Send,
    /// Send one message through every port (message passing).
    Broadcast,
}

impl ActionKind {
    /// Whether this action is expressible under the concrete `model`.
    pub fn fits(self, model: &Model) -> bool {
        match self {
            ActionKind::Post => model.is_blackboard(),
            ActionKind::Send | ActionKind::Broadcast => !model.is_blackboard(),
        }
    }

    fn fits_class(self, class: ModelClass) -> bool {
        match class {
            ModelClass::Blackboard => self == ActionKind::Post,
            ModelClass::MessagePassing => self != ActionKind::Post,
            ModelClass::Any => true,
        }
    }
}

impl fmt::Display for ActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionKind::Post => write!(f, "post"),
            ActionKind::Send => write!(f, "send"),
            ActionKind::Broadcast => write!(f, "broadcast"),
        }
    }
}

/// How a phase ends (part of the deadlock-freedom argument: every phase
/// must name its exit).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PhaseExit {
    /// The phase ends when the protocol's decision condition fires — a
    /// guard on common information, so all nodes exit together.
    Decision,
    /// A named intermediate guard on common information (e.g. "k distinct
    /// strings observed").
    Guard(&'static str),
    /// Exactly this many rounds (≥ 1).
    Rounds(usize),
}

/// A role of the global protocol.
#[derive(Clone, Debug)]
pub struct RoleSpec {
    /// Role name, referenced by phase actions and by node construction.
    pub name: &'static str,
    /// Minimal number of nodes this role needs.
    pub min_count: usize,
}

/// One phase of the global protocol.
#[derive(Clone, Debug)]
pub struct PhaseSpec {
    /// Phase name (diagnostics only).
    pub name: &'static str,
    /// Allowed emissions per role. Every declared role must appear —
    /// totality is what rules out a role with no local behavior.
    pub actions: Vec<(&'static str, Vec<ActionKind>)>,
    /// What ends the phase.
    pub exit: PhaseExit,
}

/// One global description of a protocol: model class, roles, phases.
///
/// See the [module docs](self) for the projection rules.
#[derive(Clone, Debug)]
pub struct GlobalProtocol {
    /// Protocol name (diagnostics, reports).
    pub name: &'static str,
    /// Admissible communication models.
    pub model: ModelClass,
    /// Blackboard participation discipline.
    pub participation: Participation,
    /// The role set.
    pub roles: Vec<RoleSpec>,
    /// The phase sequence (the last phase may loop until its exit fires).
    pub phases: Vec<PhaseSpec>,
}

/// Why a global protocol failed validation or projection.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProjectionError {
    /// The protocol declares no roles.
    NoRoles(&'static str),
    /// The protocol declares no phases.
    NoPhases(&'static str),
    /// Two roles share a name.
    DuplicateRole {
        /// Protocol name.
        protocol: &'static str,
        /// The duplicated role name.
        role: &'static str,
    },
    /// A phase action references an undeclared role.
    UnknownRole {
        /// Protocol name.
        protocol: &'static str,
        /// Phase name.
        phase: &'static str,
        /// The unknown role name.
        role: &'static str,
    },
    /// A declared role has no action entry in some phase, so its local
    /// machine would have no behavior there (a projection-induced
    /// deadlock).
    MissingRole {
        /// Protocol name.
        protocol: &'static str,
        /// Phase name.
        phase: &'static str,
        /// The role without an entry.
        role: &'static str,
    },
    /// An action can never be expressed under the declared model class
    /// (e.g. a post in a message-passing-only protocol).
    ActionModelMismatch {
        /// Protocol name.
        protocol: &'static str,
        /// Phase name.
        phase: &'static str,
        /// Role name.
        role: &'static str,
        /// The offending action.
        action: ActionKind,
        /// The declared model class.
        model: ModelClass,
    },
    /// A fixed-length phase of zero rounds.
    EmptyPhase {
        /// Protocol name.
        protocol: &'static str,
        /// Phase name.
        phase: &'static str,
    },
    /// Full participation requires the blackboard model class.
    FullParticipationNeedsBlackboard(&'static str),
    /// Under full participation every role must be allowed to post in
    /// every phase (an undecided node must be able to participate).
    FullParticipationNeedsPost {
        /// Protocol name.
        protocol: &'static str,
        /// Phase name.
        phase: &'static str,
        /// Role name.
        role: &'static str,
    },
    /// The concrete model is outside the protocol's model class.
    ModelNotAdmitted {
        /// Protocol name.
        protocol: &'static str,
        /// The declared class.
        class: ModelClass,
        /// Display form of the rejected model.
        model: String,
    },
    /// Fewer nodes than the roles' minimal counts require.
    TooFewNodes {
        /// Protocol name.
        protocol: &'static str,
        /// Sum of the per-role minimal counts.
        need: usize,
        /// Nodes available.
        got: usize,
    },
}

impl fmt::Display for ProjectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectionError::NoRoles(p) => write!(f, "{p}: no roles declared"),
            ProjectionError::NoPhases(p) => write!(f, "{p}: no phases declared"),
            ProjectionError::DuplicateRole { protocol, role } => {
                write!(f, "{protocol}: duplicate role `{role}`")
            }
            ProjectionError::UnknownRole {
                protocol,
                phase,
                role,
            } => write!(f, "{protocol}/{phase}: unknown role `{role}`"),
            ProjectionError::MissingRole {
                protocol,
                phase,
                role,
            } => write!(
                f,
                "{protocol}/{phase}: role `{role}` has no action entry (would deadlock)"
            ),
            ProjectionError::ActionModelMismatch {
                protocol,
                phase,
                role,
                action,
                model,
            } => write!(
                f,
                "{protocol}/{phase}: role `{role}` action `{action}` is impossible under {model}"
            ),
            ProjectionError::EmptyPhase { protocol, phase } => {
                write!(f, "{protocol}/{phase}: fixed-length phase of zero rounds")
            }
            ProjectionError::FullParticipationNeedsBlackboard(p) => {
                write!(f, "{p}: full participation requires the blackboard model")
            }
            ProjectionError::FullParticipationNeedsPost {
                protocol,
                phase,
                role,
            } => write!(
                f,
                "{protocol}/{phase}: full participation, but role `{role}` may not post"
            ),
            ProjectionError::ModelNotAdmitted {
                protocol,
                class,
                model,
            } => write!(f, "{protocol}: declared for {class}, got {model}"),
            ProjectionError::TooFewNodes {
                protocol,
                need,
                got,
            } => write!(f, "{protocol}: needs at least {need} nodes, got {got}"),
        }
    }
}

impl std::error::Error for ProjectionError {}

/// One phase of a projected local machine: the emissions this role may
/// make, under the concrete model.
#[derive(Clone, Debug)]
pub struct LocalPhase {
    /// Phase name (diagnostics).
    pub name: &'static str,
    /// Emissions allowed in this phase (silence is always allowed).
    pub allowed: Vec<ActionKind>,
    /// What ends the phase.
    pub exit: PhaseExit,
}

/// The projected, validated behavior of one role: its per-phase allowed
/// emissions. Machines carry a `LocalSpec` and check every emitted action
/// against it.
#[derive(Clone, Debug)]
pub struct LocalSpec {
    /// Owning protocol name.
    pub protocol: &'static str,
    /// Role name.
    pub role: &'static str,
    /// Per-phase allowed emissions.
    pub phases: Vec<LocalPhase>,
}

impl LocalSpec {
    /// Whether `kind` may be emitted in `phase`.
    pub fn allows(&self, phase: usize, kind: ActionKind) -> bool {
        self.phases
            .get(phase)
            .is_some_and(|p| p.allowed.contains(&kind))
    }

    /// Panics unless `kind` is allowed in `phase` — the machines'
    /// conformance check against the projected global description.
    ///
    /// # Panics
    ///
    /// Panics when the emission violates the projection.
    pub fn check(&self, phase: usize, kind: ActionKind) {
        assert!(
            self.allows(phase, kind),
            "{}/{}: emission `{kind}` violates the projection in phase {phase} ({})",
            self.protocol,
            self.role,
            self.phases.get(phase).map_or("no such phase", |p| p.name),
        );
    }
}

/// A validated projection of a [`GlobalProtocol`] onto a concrete model
/// and system size: one [`LocalSpec`] per role, plus the derived runner
/// options.
#[derive(Clone, Debug)]
pub struct Projection {
    /// Protocol name.
    pub name: &'static str,
    /// The participation discipline (drives [`Projection::options`]).
    pub participation: Participation,
    n: usize,
    locals: Vec<LocalSpec>,
}

impl Projection {
    /// The system size this projection was computed for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The local spec of `role`.
    ///
    /// # Panics
    ///
    /// Panics when the role does not exist (a construction bug, not a
    /// runtime condition).
    pub fn local(&self, role: &str) -> &LocalSpec {
        self.locals
            .iter()
            .find(|l| l.role == role)
            .unwrap_or_else(|| panic!("{}: no role `{role}` in projection", self.name))
    }

    /// All local specs, in role declaration order.
    pub fn locals(&self) -> &[LocalSpec] {
        &self.locals
    }

    /// Runner options derived from the global description (full
    /// participation becomes the runner's release-build invariant).
    pub fn options(&self) -> RunOptions {
        RunOptions {
            full_participation: self.participation == Participation::Full,
        }
    }
}

impl GlobalProtocol {
    /// Structural validation, independent of a concrete model instance.
    ///
    /// # Errors
    ///
    /// Every [`ProjectionError`] variant except `ModelNotAdmitted` and
    /// `TooFewNodes`, which depend on the concrete model and size.
    pub fn validate(&self) -> Result<(), ProjectionError> {
        if self.roles.is_empty() {
            return Err(ProjectionError::NoRoles(self.name));
        }
        if self.phases.is_empty() {
            return Err(ProjectionError::NoPhases(self.name));
        }
        for (i, role) in self.roles.iter().enumerate() {
            if self.roles[..i].iter().any(|r| r.name == role.name) {
                return Err(ProjectionError::DuplicateRole {
                    protocol: self.name,
                    role: role.name,
                });
            }
        }
        if self.participation == Participation::Full && self.model != ModelClass::Blackboard {
            return Err(ProjectionError::FullParticipationNeedsBlackboard(self.name));
        }
        for phase in &self.phases {
            if let PhaseExit::Rounds(0) = phase.exit {
                return Err(ProjectionError::EmptyPhase {
                    protocol: self.name,
                    phase: phase.name,
                });
            }
            for (role, kinds) in &phase.actions {
                if !self.roles.iter().any(|r| r.name == *role) {
                    return Err(ProjectionError::UnknownRole {
                        protocol: self.name,
                        phase: phase.name,
                        role,
                    });
                }
                for kind in kinds {
                    if !kind.fits_class(self.model) {
                        return Err(ProjectionError::ActionModelMismatch {
                            protocol: self.name,
                            phase: phase.name,
                            role,
                            action: *kind,
                            model: self.model,
                        });
                    }
                }
            }
            for role in &self.roles {
                let entry = phase.actions.iter().find(|(r, _)| *r == role.name);
                match entry {
                    None => {
                        return Err(ProjectionError::MissingRole {
                            protocol: self.name,
                            phase: phase.name,
                            role: role.name,
                        })
                    }
                    Some((_, kinds)) => {
                        if self.participation == Participation::Full
                            && !kinds.contains(&ActionKind::Post)
                        {
                            return Err(ProjectionError::FullParticipationNeedsPost {
                                protocol: self.name,
                                phase: phase.name,
                                role: role.name,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Validates and projects onto a concrete `model` and size `n`,
    /// producing one [`LocalSpec`] per role. Actions that the concrete
    /// model cannot express (posts under message passing and vice versa —
    /// possible only for [`ModelClass::Any`] protocols) are filtered out
    /// of the local specs, so the machines' conformance checks are exact
    /// for the model the run actually uses.
    ///
    /// # Errors
    ///
    /// Everything [`GlobalProtocol::validate`] reports, plus
    /// [`ProjectionError::ModelNotAdmitted`] and
    /// [`ProjectionError::TooFewNodes`].
    pub fn project(&self, model: &Model, n: usize) -> Result<Projection, ProjectionError> {
        self.validate()?;
        if !self.model.admits(model) {
            return Err(ProjectionError::ModelNotAdmitted {
                protocol: self.name,
                class: self.model,
                model: model.to_string(),
            });
        }
        let need: usize = self.roles.iter().map(|r| r.min_count).sum();
        if n < need {
            return Err(ProjectionError::TooFewNodes {
                protocol: self.name,
                need,
                got: n,
            });
        }
        let locals = self
            .roles
            .iter()
            .map(|role| LocalSpec {
                protocol: self.name,
                role: role.name,
                phases: self
                    .phases
                    .iter()
                    .map(|phase| LocalPhase {
                        name: phase.name,
                        allowed: phase
                            .actions
                            .iter()
                            .find(|(r, _)| *r == role.name)
                            .map(|(_, kinds)| {
                                kinds.iter().copied().filter(|k| k.fits(model)).collect()
                            })
                            .unwrap_or_default(),
                        exit: phase.exit,
                    })
                    .collect(),
            })
            .collect();
        Ok(Projection {
            name: self.name,
            participation: self.participation,
            n,
            locals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> GlobalProtocol {
        GlobalProtocol {
            name: "test-proto",
            model: ModelClass::Blackboard,
            participation: Participation::Full,
            roles: vec![RoleSpec {
                name: "node",
                min_count: 1,
            }],
            phases: vec![PhaseSpec {
                name: "main",
                actions: vec![("node", vec![ActionKind::Post])],
                exit: PhaseExit::Decision,
            }],
        }
    }

    #[test]
    fn minimal_projects() {
        let g = minimal();
        let p = g.project(&Model::Blackboard, 3).unwrap();
        assert!(p.options().full_participation);
        assert!(p.local("node").allows(0, ActionKind::Post));
        assert!(!p.local("node").allows(0, ActionKind::Broadcast));
        assert!(!p.local("node").allows(1, ActionKind::Post), "no phase 1");
    }

    #[test]
    fn wrong_model_is_rejected_at_projection_time() {
        let g = minimal();
        let err = g.project(&Model::message_passing_cyclic(3), 3).unwrap_err();
        assert!(matches!(err, ProjectionError::ModelNotAdmitted { .. }));
    }

    #[test]
    fn post_under_message_passing_class_is_rejected() {
        let mut g = minimal();
        g.model = ModelClass::MessagePassing;
        g.participation = Participation::Sparse;
        let err = g.validate().unwrap_err();
        assert!(matches!(err, ProjectionError::ActionModelMismatch { .. }));
    }

    #[test]
    fn role_without_phase_entry_is_a_deadlock() {
        let mut g = minimal();
        g.participation = Participation::Sparse;
        g.roles.push(RoleSpec {
            name: "observer",
            min_count: 0,
        });
        let err = g.validate().unwrap_err();
        assert!(
            matches!(
                err,
                ProjectionError::MissingRole {
                    role: "observer",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn unknown_role_is_rejected() {
        let mut g = minimal();
        g.phases[0].actions.push(("ghost", vec![ActionKind::Post]));
        assert!(matches!(
            g.validate().unwrap_err(),
            ProjectionError::UnknownRole { role: "ghost", .. }
        ));
    }

    #[test]
    fn duplicate_role_is_rejected() {
        let mut g = minimal();
        g.roles.push(RoleSpec {
            name: "node",
            min_count: 1,
        });
        assert!(matches!(
            g.validate().unwrap_err(),
            ProjectionError::DuplicateRole { .. }
        ));
    }

    #[test]
    fn full_participation_requires_posting_everywhere() {
        let mut g = minimal();
        g.phases[0].actions[0].1 = vec![];
        assert!(matches!(
            g.validate().unwrap_err(),
            ProjectionError::FullParticipationNeedsPost { .. }
        ));
    }

    #[test]
    fn too_few_nodes_is_rejected() {
        let mut g = minimal();
        g.roles[0].min_count = 4;
        assert!(matches!(
            g.project(&Model::Blackboard, 3).unwrap_err(),
            ProjectionError::TooFewNodes {
                need: 4,
                got: 3,
                ..
            }
        ));
    }

    #[test]
    fn zero_round_phase_is_rejected() {
        let mut g = minimal();
        g.phases[0].exit = PhaseExit::Rounds(0);
        assert!(matches!(
            g.validate().unwrap_err(),
            ProjectionError::EmptyPhase { .. }
        ));
    }

    #[test]
    fn any_model_filters_actions_per_concrete_model() {
        let g = GlobalProtocol {
            name: "dual",
            model: ModelClass::Any,
            participation: Participation::Sparse,
            roles: vec![RoleSpec {
                name: "node",
                min_count: 1,
            }],
            phases: vec![PhaseSpec {
                name: "main",
                actions: vec![(
                    "node",
                    vec![ActionKind::Post, ActionKind::Broadcast, ActionKind::Send],
                )],
                exit: PhaseExit::Decision,
            }],
        };
        let bb = g.project(&Model::Blackboard, 2).unwrap();
        assert!(bb.local("node").allows(0, ActionKind::Post));
        assert!(!bb.local("node").allows(0, ActionKind::Broadcast));
        let mp = g.project(&Model::message_passing_cyclic(2), 2).unwrap();
        assert!(!mp.local("node").allows(0, ActionKind::Post));
        assert!(mp.local("node").allows(0, ActionKind::Broadcast));
        assert!(mp.local("node").allows(0, ActionKind::Send));
    }

    #[test]
    fn spec_check_panics_with_context() {
        let g = minimal();
        let p = g.project(&Model::Blackboard, 2).unwrap();
        let spec = p.local("node");
        spec.check(0, ActionKind::Post); // fine
        let err = std::panic::catch_unwind(|| spec.check(0, ActionKind::Send)).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("test-proto/node"), "{msg}");
    }
}
