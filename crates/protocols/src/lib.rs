//! Executable anonymous distributed algorithms from the paper.
//!
//! * [`BlackboardLeaderElection`] — the Theorem 4.1 'if'-direction
//!   algorithm: post your randomness every round, elect the holder of the
//!   minimal *unique* string once one exists;
//! * [`matching`] — Algorithm 1 (`CreateMatching`): randomized
//!   request/acknowledge matching between two groups of anonymous nodes;
//! * [`EuclidLeaderElection`] — the Theorem 4.2 'if'-direction algorithm:
//!   discover the source groups, then imitate the subtractive Euclid
//!   process by repeatedly matching the two smallest groups and
//!   deactivating the matched members of the larger, until a singleton
//!   group remains — its member leads;
//! * [`reduction`] — Theorem C.1: any *name-independent* input-output task
//!   reduces to leader election (the leader aggregates the input multiset,
//!   computes an input→output table, and publishes it);
//! * [`consensus`] — consensus as the canonical name-independent task,
//!   solved via the reduction.
//!
//! All protocols run on the [`rsbt_sim::runner`] engine, drawing their
//! randomness through an [`rsbt_random::Assignment`] so correlated sources
//! are modeled faithfully — the central concern of the paper.
//!
//! The [`choreo`] module additionally expresses every protocol as a
//! *choreography*: one global description projected onto per-role local
//! machines, runnable on three interchangeable backends (the in-process
//! simulator, a parallel Monte-Carlo estimator, and real processes over
//! local TCP).

#![deny(deprecated)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod choreo;

mod blackboard_le;
pub mod consensus;
mod deputy_bb;
mod euclid_le;
mod k_leader_bb;
pub mod matching;
pub mod reduction;
mod role;
mod wsb_bb;

pub use crate::blackboard_le::BlackboardLeaderElection;
pub use crate::deputy_bb::{DeputyRole, LeaderAndDeputyBlackboard};
pub use crate::euclid_le::{EuclidLeaderElection, EuclidMsg};
pub use crate::k_leader_bb::KLeaderBlackboard;
pub use crate::role::{leader_count, Role};
pub use crate::wsb_bb::WeakSymmetryBreakingBlackboard;
