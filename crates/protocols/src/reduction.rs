//! Theorem C.1: name-independent input-output tasks reduce to leader
//! election.
//!
//! A task `(I, O, Δ)` is *name-independent* when parties holding the same
//! input value must produce the same output value. Given any leader-
//! election protocol, such a task is solved in three extra phases:
//!
//! 1. every node publishes its input value;
//! 2. the leader computes an input-value → output-value table from the
//!    input multiset (the centralized solve) and publishes it;
//! 3. every node outputs the table entry for its own input.
//!
//! Publishing the *table* rather than per-node outputs keeps the reduction
//! anonymous: nobody needs to address anybody. The construction is
//! generic over the inner election protocol `L`, so it runs in both the
//! blackboard and the message-passing model.

use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use rsbt_sim::net::{Wire, WireError};
use rsbt_sim::runner::{Incoming, Outgoing, Protocol, RoundCtx};

use crate::role::Role;

/// The centralized solver the leader applies to the multiset of inputs:
/// maps the sorted input multiset to an input-value → output-value table.
pub type TableSolver = Rc<dyn Fn(&[u64]) -> BTreeMap<u64, u64>>;

/// Messages of the reduction: inner election messages, then task phases.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ReductionMsg<M> {
    /// A message of the inner leader-election protocol.
    Inner(M),
    /// Phase 1: a node's input value.
    Input(u64),
    /// Phase 2: the leader's input → output table, as sorted pairs.
    Table(Vec<(u64, u64)>),
}

impl<M: Wire> Wire for ReductionMsg<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ReductionMsg::Inner(m) => {
                out.push(0);
                m.encode(out);
            }
            ReductionMsg::Input(v) => {
                out.push(1);
                v.encode(out);
            }
            ReductionMsg::Table(t) => {
                out.push(2);
                t.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(ReductionMsg::Inner(M::decode(buf)?)),
            1 => Ok(ReductionMsg::Input(u64::decode(buf)?)),
            2 => Ok(ReductionMsg::Table(Vec::decode(buf)?)),
            _ => Err(WireError::new("invalid ReductionMsg tag")),
        }
    }
}

/// A node of the reduction protocol, wrapping an inner election node `L`.
///
/// Construct one node per process with [`ViaLeader::new`]; processes run
/// identical *code* but carry their own `input` (use
/// [`rsbt_sim::runner::run_nodes`]).
pub struct ViaLeader<L: Protocol<Output = Role>> {
    inner: L,
    input: u64,
    solver: TableSolver,
    /// Round at which the inner election completed (everyone decides the
    /// same round for the elections in this crate).
    elected_round: Option<usize>,
    inputs_seen: Option<Vec<u64>>,
    output: Option<u64>,
}

impl<L: Protocol<Output = Role>> fmt::Debug for ViaLeader<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ViaLeader")
            .field("input", &self.input)
            .field("elected_round", &self.elected_round)
            .field("output", &self.output)
            .finish_non_exhaustive()
    }
}

impl<L: Protocol<Output = Role>> ViaLeader<L> {
    /// Wraps an inner election node with this process's task input and the
    /// centralized solver.
    pub fn new(inner: L, input: u64, solver: TableSolver) -> Self {
        ViaLeader {
            inner,
            input,
            solver,
            elected_round: None,
            inputs_seen: None,
            output: None,
        }
    }
}

impl<L: Protocol<Output = Role>> Protocol for ViaLeader<L>
where
    L::Msg: Wire,
{
    type Msg = ReductionMsg<L::Msg>;
    type Output = u64;

    fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<Self::Msg>) -> Outgoing<Self::Msg> {
        // Phase 0: run the inner election until it decides.
        let elected_round = match self.elected_round {
            None => {
                let inner_incoming = project_inner(incoming);
                let out = self.inner.round(ctx, &inner_incoming);
                if self.inner.output().is_some() {
                    self.elected_round = Some(ctx.round);
                    // The node decided *this* round; its final messages (if
                    // any) still need to go out before the task phases.
                }
                return lift_inner(out);
            }
            Some(r) => r,
        };
        // Phase 1 (round elected_round + 1): publish the input.
        if ctx.round == elected_round + 1 {
            return publish(ctx, incoming, ReductionMsg::Input(self.input));
        }
        // Phase 2 (round elected_round + 2): the leader publishes the
        // table computed from the full input multiset.
        if ctx.round == elected_round + 2 {
            let mut inputs: Vec<u64> = collect(incoming, |m| match m {
                ReductionMsg::Input(v) => Some(*v),
                _ => None,
            });
            inputs.push(self.input);
            inputs.sort_unstable();
            self.inputs_seen = Some(inputs.clone());
            if self.inner.output() == Some(Role::Leader) {
                let table: Vec<(u64, u64)> = (self.solver)(&inputs).into_iter().collect();
                return publish(ctx, incoming, ReductionMsg::Table(table));
            }
            return Outgoing::Silent;
        }
        // Phase 3: read the table and decide.
        if ctx.round == elected_round + 3 && self.output.is_none() {
            let tables: Vec<Vec<(u64, u64)>> = collect(incoming, |m| match m {
                ReductionMsg::Table(t) => Some(t.clone()),
                _ => None,
            });
            let table = if self.inner.output() == Some(Role::Leader) {
                let inputs = self.inputs_seen.as_ref().expect("phase 2 ran");
                (self.solver)(inputs).into_iter().collect()
            } else {
                tables.into_iter().next().expect("leader published a table")
            };
            let map: BTreeMap<u64, u64> = table.into_iter().collect();
            self.output = Some(*map.get(&self.input).expect("table covers all inputs"));
        }
        Outgoing::Silent
    }

    fn output(&self) -> Option<u64> {
        self.output
    }

    fn msg_bytes(msg: &Self::Msg) -> usize {
        msg.wire_len()
    }
}

/// Broadcasts (message-passing) or posts (blackboard) a task message.
fn publish<M: Clone + Ord + fmt::Debug>(
    _ctx: RoundCtx,
    incoming: &Incoming<ReductionMsg<M>>,
    msg: ReductionMsg<M>,
) -> Outgoing<ReductionMsg<M>> {
    match incoming {
        Incoming::Board(_) => Outgoing::Post(msg),
        Incoming::Ports(_) => Outgoing::Broadcast(msg),
    }
}

/// Collects all incoming task messages matching `f`, model-agnostically.
fn collect<M, T>(
    incoming: &Incoming<ReductionMsg<M>>,
    f: impl Fn(&ReductionMsg<M>) -> Option<T>,
) -> Vec<T>
where
    M: Clone + Ord + fmt::Debug,
{
    match incoming {
        Incoming::Board(msgs) => msgs.iter().filter_map(f).collect(),
        Incoming::Ports(slots) => slots.iter().flatten().filter_map(f).collect(),
    }
}

/// Projects incoming messages down to the inner protocol's alphabet.
fn project_inner<M: Clone + Ord + fmt::Debug>(incoming: &Incoming<ReductionMsg<M>>) -> Incoming<M> {
    match incoming {
        Incoming::Board(msgs) => Incoming::Board(
            msgs.iter()
                .filter_map(|m| match m {
                    ReductionMsg::Inner(x) => Some(x.clone()),
                    _ => None,
                })
                .collect(),
        ),
        Incoming::Ports(slots) => Incoming::Ports(
            slots
                .iter()
                .map(|s| match s {
                    Some(ReductionMsg::Inner(x)) => Some(x.clone()),
                    _ => None,
                })
                .collect(),
        ),
    }
}

/// Lifts the inner protocol's outgoing messages into the reduction
/// alphabet.
fn lift_inner<M: Clone + Ord + fmt::Debug>(out: Outgoing<M>) -> Outgoing<ReductionMsg<M>> {
    match out {
        Outgoing::Silent => Outgoing::Silent,
        Outgoing::Post(m) => Outgoing::Post(ReductionMsg::Inner(m)),
        Outgoing::Send(v) => Outgoing::Send(
            v.into_iter()
                .map(|(p, m)| (p, ReductionMsg::Inner(m)))
                .collect(),
        ),
        Outgoing::Broadcast(m) => Outgoing::Broadcast(ReductionMsg::Inner(m)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsbt_random::Assignment;
    use rsbt_sim::runner::run_nodes;
    use rsbt_sim::{Model, PortNumbering};

    use crate::{BlackboardLeaderElection, EuclidLeaderElection};

    /// Name-independent "minimum" task: everyone outputs the global min.
    fn min_solver() -> TableSolver {
        Rc::new(|inputs: &[u64]| {
            let min = *inputs.iter().min().expect("non-empty");
            inputs.iter().map(|&v| (v, min)).collect()
        })
    }

    #[test]
    fn blackboard_min_via_leader() {
        let alpha = Assignment::from_group_sizes(&[1, 1, 1]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let inputs = [30u64, 10, 20];
        let nodes: Vec<_> = inputs
            .iter()
            .map(|&v| ViaLeader::new(BlackboardLeaderElection::new(), v, min_solver()))
            .collect();
        let out = run_nodes(&Model::Blackboard, &alpha, 256, nodes, &mut rng);
        assert!(out.completed);
        assert_eq!(out.outputs, vec![Some(10), Some(10), Some(10)]);
    }

    #[test]
    fn message_passing_min_via_leader() {
        let alpha = Assignment::from_group_sizes(&[2, 3]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let ports = PortNumbering::random(5, &mut rng);
        let inputs = [5u64, 5, 9, 9, 9]; // same-source nodes share inputs
        let nodes: Vec<_> = inputs
            .iter()
            .map(|&v| ViaLeader::new(EuclidLeaderElection::new(2), v, min_solver()))
            .collect();
        let out = run_nodes(&Model::MessagePassing(ports), &alpha, 6000, nodes, &mut rng);
        assert!(out.completed);
        assert!(out.outputs.iter().all(|o| *o == Some(5)));
    }

    #[test]
    fn name_independence_equal_inputs_equal_outputs() {
        // A "rank" task: output = rank of your input among distinct inputs.
        let solver: TableSolver = Rc::new(|inputs: &[u64]| {
            let mut distinct: Vec<u64> = inputs.to_vec();
            distinct.dedup();
            distinct
                .iter()
                .enumerate()
                .map(|(r, &v)| (v, r as u64))
                .collect()
        });
        let alpha = Assignment::private(4);
        let mut rng = StdRng::seed_from_u64(8);
        let inputs = [7u64, 3, 7, 11];
        let nodes: Vec<_> = inputs
            .iter()
            .map(|&v| ViaLeader::new(BlackboardLeaderElection::new(), v, solver.clone()))
            .collect();
        let out = run_nodes(&Model::Blackboard, &alpha, 256, nodes, &mut rng);
        assert!(out.completed);
        // inputs sorted: [3,7,7,11] → ranks {3:0, 7:1, 11:2}.
        assert_eq!(
            out.outputs,
            vec![Some(1), Some(0), Some(1), Some(2)],
            "equal inputs get equal outputs"
        );
    }

    #[test]
    fn reduction_stalls_when_election_stalls() {
        // No singleton source on the blackboard: Theorem C.1's hypothesis
        // fails and the reduction inherits the stall.
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let nodes: Vec<_> = (0..4)
            .map(|i| ViaLeader::new(BlackboardLeaderElection::new(), i, min_solver()))
            .collect();
        let out = run_nodes(&Model::Blackboard, &alpha, 64, nodes, &mut rng);
        assert!(!out.completed);
    }
}
