//! Blackboard weak symmetry breaking: output bits, not all equal.
//!
//! Algorithmic counterpart of `exp_wsb`'s framework characterization: the
//! task is eventually solvable iff `k ≥ 2` (two distinct sources). Every
//! node posts its randomness string each round; as soon as at least two
//! distinct strings exist, the nodes holding the lexicographically
//! smallest string output `0` and everyone else outputs `1` — a
//! deterministic rule on the common multiset, so outputs are consistent
//! and provably not all equal.

use rsbt_sim::net::Wire;
use rsbt_sim::runner::{Incoming, Outgoing, Protocol, RoundCtx};

/// The blackboard weak-symmetry-breaking protocol. Outputs a bit.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rsbt_protocols::WeakSymmetryBreakingBlackboard;
/// use rsbt_random::Assignment;
/// use rsbt_sim::{runner, Model};
///
/// // k = 2 suffices even with no singleton source.
/// let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let out = runner::run(
///     &Model::Blackboard, &alpha, 64,
///     WeakSymmetryBreakingBlackboard::new, &mut rng,
/// );
/// assert!(out.completed);
/// let bits: Vec<u8> = out.outputs.iter().map(|o| o.unwrap()).collect();
/// assert!(bits.iter().any(|&b| b == 0) && bits.iter().any(|&b| b == 1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct WeakSymmetryBreakingBlackboard {
    history: Vec<bool>,
    decided: Option<u8>,
}

impl WeakSymmetryBreakingBlackboard {
    /// Creates a fresh, undecided node.
    pub fn new() -> Self {
        WeakSymmetryBreakingBlackboard::default()
    }
}

impl Protocol for WeakSymmetryBreakingBlackboard {
    type Msg = Vec<bool>;
    type Output = u8;

    fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<Vec<bool>>) -> Outgoing<Vec<bool>> {
        if self.decided.is_some() {
            return Outgoing::Silent;
        }
        if ctx.round > 1 {
            let board = incoming.board_view().expect("runs on a blackboard");
            let mine = self.history.clone();
            let min = board.iter().min().map_or(&mine, |m| m.min(&mine));
            let max = board.iter().max().map_or(&mine, |m| m.max(&mine));
            if min != max {
                self.decided = Some(u8::from(mine != *min));
                return Outgoing::Silent;
            }
        }
        self.history.push(ctx.bit);
        Outgoing::Post(self.history.clone())
    }

    fn output(&self) -> Option<u8> {
        self.decided
    }

    fn msg_bytes(msg: &Vec<bool>) -> usize {
        msg.wire_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsbt_random::Assignment;
    use rsbt_sim::{runner, Model};

    fn run_wsb(sizes: &[usize], seed: u64, cap: usize) -> runner::RunOutcome<u8> {
        let alpha = Assignment::from_group_sizes(sizes).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        runner::run(
            &Model::Blackboard,
            &alpha,
            cap,
            WeakSymmetryBreakingBlackboard::new,
            &mut rng,
        )
    }

    fn assert_broken(outputs: &[Option<u8>]) {
        let bits: Vec<u8> = outputs.iter().map(|o| o.expect("decided")).collect();
        assert!(
            bits.contains(&0) && bits.contains(&1),
            "not all equal: {bits:?}"
        );
    }

    #[test]
    fn two_groups_suffice() {
        for seed in 0..20 {
            let out = run_wsb(&[2, 2], seed, 128);
            assert!(out.completed, "seed {seed}");
            assert_broken(&out.outputs);
        }
    }

    #[test]
    fn three_groups_work_too() {
        for seed in 0..10 {
            let out = run_wsb(&[3, 2, 2], seed, 128);
            assert!(out.completed);
            assert_broken(&out.outputs);
        }
    }

    #[test]
    fn single_source_stalls() {
        for seed in 0..5 {
            let out = run_wsb(&[4], seed, 64);
            assert!(!out.completed, "seed {seed}: k = 1 must stall");
        }
    }

    #[test]
    fn groups_output_consistently() {
        // Nodes of the same group hold the same string, so they output the
        // same bit.
        for seed in 0..10 {
            let out = run_wsb(&[3, 2], seed, 128);
            assert!(out.completed);
            let bits: Vec<u8> = out.outputs.iter().map(|o| o.unwrap()).collect();
            assert_eq!(bits[0], bits[1]);
            assert_eq!(bits[1], bits[2]);
            assert_eq!(bits[3], bits[4]);
            assert_ne!(bits[0], bits[3]);
        }
    }

    #[test]
    fn solves_where_leader_election_cannot() {
        // [2,2] has no singleton source: LE impossible (Thm 4.1), yet WSB
        // terminates — the strict task separation, algorithmically.
        let out = run_wsb(&[2, 2], 3, 128);
        assert!(out.completed);
    }
}
