//! Algorithm 1: the `CreateMatching` procedure.
//!
//! Two groups of anonymous nodes, `A` (size `a ≤ b`) and `B` (size `b`),
//! build a matching of all of `A` into `B`:
//!
//! 1. every unmatched `A`-node picks a uniformly random *active* `B`-port
//!    and sends a request;
//! 2. every `B`-node that received requests acknowledges the minimal
//!    requesting port and announces itself matched to everyone else;
//! 3. acknowledged `A`-nodes announce themselves matched.
//!
//! Each iteration matches at least one pair, so the procedure terminates
//! after at most `a` iterations (Lemma 4.8). Nodes whose group shares one
//! randomness source draw *identical* random choices — the correlated-
//! randomness regime the paper studies — yet the procedure still works
//! because port numbers are local: the same random index points different
//! nodes at different targets.
//!
//! The protocol here is standalone: group membership and the ports leading
//! into `B` are constructor inputs, mirroring the paper's premise that
//! "this separation is already known to all the participating parties".
//! [`crate::EuclidLeaderElection`] derives that information on-line from
//! the nodes' randomness instead.

use rsbt_sim::net::{Wire, WireError};
use rsbt_sim::runner::{Incoming, Outgoing, Protocol, RoundCtx};

/// Messages of the matching procedure.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum MatchMsg {
    /// `A → B`: "match with me".
    Req,
    /// `B → A`: "accepted" (sent to exactly one requester).
    Ack,
    /// `B → all`: "I am matched, stop targeting me".
    AnnB,
    /// `A → all`: "I am matched" (progress counting).
    AnnA,
}

impl Wire for MatchMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            MatchMsg::Req => 0,
            MatchMsg::Ack => 1,
            MatchMsg::AnnB => 2,
            MatchMsg::AnnA => 3,
        });
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(MatchMsg::Req),
            1 => Ok(MatchMsg::Ack),
            2 => Ok(MatchMsg::AnnB),
            3 => Ok(MatchMsg::AnnA),
            _ => Err(WireError::new("invalid MatchMsg tag")),
        }
    }

    fn wire_len(&self) -> usize {
        1
    }
}

/// Final status of a node after the matching completes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatchStatus {
    /// An `A`-node (always matched on termination) or a matched `B`-node.
    Matched,
    /// A `B`-node that no `A`-node claimed (`b − a` of them).
    Unmatched,
    /// A node outside both groups.
    Bystander,
}

impl Wire for MatchStatus {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            MatchStatus::Matched => 0,
            MatchStatus::Unmatched => 1,
            MatchStatus::Bystander => 2,
        });
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(MatchStatus::Matched),
            1 => Ok(MatchStatus::Unmatched),
            2 => Ok(MatchStatus::Bystander),
            _ => Err(WireError::new("invalid MatchStatus tag")),
        }
    }

    fn wire_len(&self) -> usize {
        1
    }
}

/// Which side of the matching a node is on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Side {
    A,
    B,
    Bystander,
}

/// One anonymous node of the `CreateMatching` procedure.
///
/// # Example
///
/// See `tests::matches_all_of_a` for a complete run; the constructors are
/// [`CreateMatching::new_a`], [`CreateMatching::new_b`] and
/// [`CreateMatching::bystander`].
#[derive(Clone, Debug)]
pub struct CreateMatching {
    side: Side,
    /// |A|: how many `AnnA` announcements signal termination.
    a_total: usize,
    /// For `A`-nodes: ports leading to currently-active `B`-nodes.
    active_b_ports: Vec<usize>,
    /// Fresh random bits accumulated for target selection.
    bit_buffer: Vec<bool>,
    matched_self: bool,
    /// Port of the request sent in the current block (A side).
    matched_count: usize,
    decided: Option<MatchStatus>,
}

impl CreateMatching {
    /// An `A`-side node; `b_ports` are its ports into `B`.
    ///
    /// # Panics
    ///
    /// Panics if `a_total == 0` or `b_ports.len() < a_total` (the procedure
    /// requires `|A| ≤ |B|`).
    pub fn new_a(a_total: usize, b_ports: Vec<usize>) -> Self {
        assert!(a_total >= 1, "matching needs a non-empty A side");
        assert!(
            b_ports.len() >= a_total,
            "CreateMatching requires |A| ≤ |B|"
        );
        CreateMatching {
            side: Side::A,
            a_total,
            active_b_ports: b_ports,
            bit_buffer: Vec::new(),
            matched_self: false,
            matched_count: 0,
            decided: None,
        }
    }

    /// A `B`-side node.
    pub fn new_b(a_total: usize) -> Self {
        CreateMatching {
            side: Side::B,
            a_total,
            active_b_ports: Vec::new(),
            bit_buffer: Vec::new(),
            matched_self: false,
            matched_count: 0,
            decided: None,
        }
    }

    /// A node in neither group (it still observes announcements so that
    /// every node terminates with a status).
    pub fn bystander(a_total: usize) -> Self {
        CreateMatching {
            side: Side::Bystander,
            a_total,
            active_b_ports: Vec::new(),
            bit_buffer: Vec::new(),
            matched_self: false,
            matched_count: 0,
            decided: None,
        }
    }

    /// Draws a uniform index in `0..m` from the bit buffer by rejection
    /// sampling. Returns `None` when the buffer cannot decide yet.
    fn draw_index(&mut self, m: usize) -> Option<usize> {
        if m == 1 {
            return Some(0);
        }
        let needed = usize::BITS as usize - (m - 1).leading_zeros() as usize;
        if self.bit_buffer.len() < needed {
            return None;
        }
        let bits: Vec<bool> = self.bit_buffer.drain(..needed).collect();
        let v = bits
            .iter()
            .fold(0usize, |acc, &b| acc << 1 | usize::from(b));
        (v < m).then_some(v)
    }

    fn finish(&mut self) {
        self.decided = Some(match self.side {
            Side::A => MatchStatus::Matched,
            Side::B => {
                if self.matched_self {
                    MatchStatus::Matched
                } else {
                    MatchStatus::Unmatched
                }
            }
            Side::Bystander => MatchStatus::Bystander,
        });
    }
}

impl Protocol for CreateMatching {
    type Msg = MatchMsg;
    type Output = MatchStatus;

    fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<MatchMsg>) -> Outgoing<MatchMsg> {
        if self.decided.is_some() {
            return Outgoing::Silent;
        }
        self.bit_buffer.push(ctx.bit);
        let ports = incoming.ports_view().expect("runs under message passing");
        match (ctx.round - 1) % 3 {
            // R1: count AnnA from the previous block; unmatched A-nodes
            // request a random active B-port.
            0 => {
                self.matched_count += ports.iter().filter(|m| **m == Some(MatchMsg::AnnA)).count();
                if self.matched_count >= self.a_total {
                    self.finish();
                    return Outgoing::Silent;
                }
                if self.side == Side::A && !self.matched_self {
                    let m = self.active_b_ports.len();
                    debug_assert!(m > 0, "A-node ran out of active B targets");
                    if let Some(i) = self.draw_index(m) {
                        return Outgoing::Send(vec![(self.active_b_ports[i], MatchMsg::Req)]);
                    }
                }
                Outgoing::Silent
            }
            // R2: unmatched B-nodes accept the minimal requesting port.
            1 => {
                if self.side == Side::B && !self.matched_self {
                    let requesters: Vec<usize> = ports
                        .iter()
                        .enumerate()
                        .filter(|(_, m)| **m == Some(MatchMsg::Req))
                        .map(|(i, _)| i + 1)
                        .collect();
                    if let Some(&min_port) = requesters.first() {
                        self.matched_self = true;
                        let mut out = vec![(min_port, MatchMsg::Ack)];
                        for p in 1..ctx.n {
                            if p != min_port {
                                out.push((p, MatchMsg::AnnB));
                            }
                        }
                        return Outgoing::Send(out);
                    }
                }
                Outgoing::Silent
            }
            // R3: process Ack/AnnB; acknowledged A-nodes announce.
            _ => {
                let mut acked = false;
                for (i, m) in ports.iter().enumerate() {
                    match m {
                        Some(MatchMsg::Ack) => {
                            acked = true;
                            self.active_b_ports.retain(|&p| p != i + 1);
                        }
                        Some(MatchMsg::AnnB) => {
                            self.active_b_ports.retain(|&p| p != i + 1);
                        }
                        _ => {}
                    }
                }
                if acked && self.side == Side::A {
                    self.matched_self = true;
                    self.matched_count += 1;
                    if self.matched_count >= self.a_total {
                        // Still announce so everyone else can finish.
                        self.finish();
                    }
                    return Outgoing::Broadcast(MatchMsg::AnnA);
                }
                Outgoing::Silent
            }
        }
    }

    fn output(&self) -> Option<MatchStatus> {
        self.decided
    }

    fn msg_bytes(msg: &MatchMsg) -> usize {
        msg.wire_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsbt_random::Assignment;
    use rsbt_sim::runner::run_nodes;
    use rsbt_sim::{Model, PortNumbering};

    /// Builds the node vector for groups A = first `a` nodes, B = next `b`
    /// nodes, bystanders after, under the given numbering.
    fn build_nodes(ports: &PortNumbering, a: usize, b: usize) -> Vec<CreateMatching> {
        let n = ports.n();
        (0..n)
            .map(|i| {
                if i < a {
                    let b_ports: Vec<usize> = (a..a + b)
                        .map(|target| ports.port_towards(i, target))
                        .collect();
                    CreateMatching::new_a(a, b_ports)
                } else if i < a + b {
                    CreateMatching::new_b(a)
                } else {
                    CreateMatching::bystander(a)
                }
            })
            .collect()
    }

    fn run_matching(
        a: usize,
        b: usize,
        extra: usize,
        sources: Vec<usize>,
        seed: u64,
    ) -> Vec<Option<MatchStatus>> {
        let n = a + b + extra;
        let mut rng = StdRng::seed_from_u64(seed);
        let ports = PortNumbering::random(n, &mut rng);
        let nodes = build_nodes(&ports, a, b);
        let alpha = Assignment::from_sources(sources).unwrap();
        assert_eq!(alpha.n(), n);
        let out = run_nodes(&Model::MessagePassing(ports), &alpha, 3000, nodes, &mut rng);
        assert!(out.completed, "matching a={a} b={b} seed={seed} timed out");
        out.outputs
    }

    fn assert_matching_shape(outputs: &[Option<MatchStatus>], a: usize, b: usize) {
        let matched_a = outputs[..a]
            .iter()
            .filter(|o| **o == Some(MatchStatus::Matched))
            .count();
        assert_eq!(matched_a, a, "every A-node must be matched");
        let matched_b = outputs[a..a + b]
            .iter()
            .filter(|o| **o == Some(MatchStatus::Matched))
            .count();
        assert_eq!(matched_b, a, "exactly |A| B-nodes are matched");
        let unmatched_b = outputs[a..a + b]
            .iter()
            .filter(|o| **o == Some(MatchStatus::Unmatched))
            .count();
        assert_eq!(unmatched_b, b - a);
        for o in &outputs[a + b..] {
            assert_eq!(*o, Some(MatchStatus::Bystander));
        }
    }

    #[test]
    fn matches_all_of_a_private_randomness() {
        for seed in 0..10 {
            let outputs = run_matching(2, 3, 0, (0..5).collect(), seed);
            assert_matching_shape(&outputs, 2, 3);
        }
    }

    #[test]
    fn matches_with_shared_group_sources() {
        // The paper's regime: group A shares one source, group B another.
        for seed in 0..10 {
            let sources = vec![0, 0, 1, 1, 1];
            let outputs = run_matching(2, 3, 0, sources, seed);
            assert_matching_shape(&outputs, 2, 3);
        }
    }

    #[test]
    fn equal_sizes_match_perfectly() {
        for seed in 0..5 {
            let sources = vec![0, 0, 0, 1, 1, 1];
            let outputs = run_matching(3, 3, 0, sources, seed);
            assert_matching_shape(&outputs, 3, 3);
        }
    }

    #[test]
    fn bystanders_observe_and_finish() {
        for seed in 0..5 {
            let sources = vec![0, 1, 1, 2, 2];
            let outputs = run_matching(1, 2, 2, sources, seed);
            assert_matching_shape(&outputs, 1, 2);
        }
    }

    #[test]
    fn singleton_a_matches_fast() {
        let outputs = run_matching(1, 4, 0, vec![0, 1, 1, 1, 1], 3);
        assert_matching_shape(&outputs, 1, 4);
    }

    #[test]
    #[should_panic(expected = "|A| ≤ |B|")]
    fn rejects_a_larger_than_b() {
        let _ = CreateMatching::new_a(3, vec![1, 2]);
    }

    #[test]
    fn draw_index_rejection_sampling() {
        let mut node = CreateMatching::new_b(1);
        // m = 1 needs no bits.
        assert_eq!(node.draw_index(1), Some(0));
        // m = 3 needs 2 bits; "11" = 3 is rejected.
        node.bit_buffer = vec![true, true];
        assert_eq!(node.draw_index(3), None);
        assert!(node.bit_buffer.is_empty(), "rejected bits are consumed");
        node.bit_buffer = vec![true, false];
        assert_eq!(node.draw_index(3), Some(2));
    }
}
