//! Message-passing leader election by imitating Euclid's algorithm
//! (Theorem 4.2, 'if' direction).
//!
//! The protocol has two phases:
//!
//! 1. **Discovery** — every node broadcasts its accumulated random string
//!    each round. All nodes see the same multiset of `n` strings, so once
//!    `k` distinct strings appear (`k` = number of sources, common
//!    knowledge) everyone agrees on the partition into source groups, on
//!    each group's size, and on which local port leads into which group.
//! 2. **Euclid loop** — repeatedly pick the two smallest active groups
//!    `A, B` (`|A| ≤ |B|`, deterministic tie-break), run Algorithm 1's
//!    matching between them, and deactivate the matched `B`-members. Group
//!    sizes evolve as `(|A|, |B|) → (|A|, |B| − |A|)`: the subtractive
//!    Euclid step. The gcd of the active sizes is invariant, so when
//!    `gcd(n_1, …, n_k) = 1` a singleton group eventually appears — its
//!    unique active member becomes the leader. When the gcd exceeds 1 the
//!    loop bottoms out at one group of gcd-many mutually-consistent nodes
//!    and never terminates, matching the impossibility direction.
//!
//! Nodes sharing a randomness source draw identical bits throughout —
//! including during the matching's random port choices — and the protocol
//! still works for *any* port numbering, which is exactly the content of
//! Theorem 4.2.

use rsbt_sim::net::{Wire, WireError};
use rsbt_sim::runner::{Incoming, Outgoing, Protocol, RoundCtx};

use crate::role::Role;

/// Messages of the Euclid leader-election protocol.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum EuclidMsg {
    /// Discovery phase: the sender's random string so far.
    Hist(Vec<bool>),
    /// Matching: `A → B` request.
    Req,
    /// Matching: `B → A` accept.
    Ack,
    /// Matching: matched `B`-node announcement.
    AnnB,
    /// Matching: matched `A`-node announcement.
    AnnA,
}

impl Wire for EuclidMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            EuclidMsg::Hist(h) => {
                out.push(0);
                h.encode(out);
            }
            EuclidMsg::Req => out.push(1),
            EuclidMsg::Ack => out.push(2),
            EuclidMsg::AnnB => out.push(3),
            EuclidMsg::AnnA => out.push(4),
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(EuclidMsg::Hist(Vec::decode(buf)?)),
            1 => Ok(EuclidMsg::Req),
            2 => Ok(EuclidMsg::Ack),
            3 => Ok(EuclidMsg::AnnB),
            4 => Ok(EuclidMsg::AnnA),
            _ => Err(WireError::new("invalid EuclidMsg tag")),
        }
    }
}

/// One anonymous node of the Euclid leader-election protocol.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rsbt_protocols::{EuclidLeaderElection, Role};
/// use rsbt_random::Assignment;
/// use rsbt_sim::{runner, Model, PortNumbering};
///
/// // Group sizes [2, 3]: gcd 1, so election succeeds for any ports.
/// let alpha = Assignment::from_group_sizes(&[2, 3]).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let ports = PortNumbering::random(5, &mut rng);
/// let out = runner::run(
///     &Model::MessagePassing(ports),
///     &alpha,
///     4000,
///     || EuclidLeaderElection::new(2),
///     &mut rng,
/// );
/// assert!(out.completed);
/// let leaders = out.outputs.iter().filter(|o| **o == Some(Role::Leader)).count();
/// assert_eq!(leaders, 1);
/// ```
#[derive(Clone, Debug)]
pub struct EuclidLeaderElection {
    /// Number of randomness sources (common knowledge).
    k: usize,
    // --- discovery ---
    history: Vec<bool>,
    freeze_round: Option<usize>,
    my_group: usize,
    /// Group of the node behind each port (valid after freeze).
    port_group: Vec<usize>,
    /// Whether the node behind each port is still active.
    port_active: Vec<bool>,
    self_active: bool,
    /// Active size of each group.
    sizes: Vec<usize>,
    // --- Euclid loop ---
    pair: Option<(usize, usize)>,
    matched_self: bool,
    matched_a_count: usize,
    bit_buffer: Vec<bool>,
    decided: Option<Role>,
}

impl EuclidLeaderElection {
    /// Creates a fresh node that expects `k` distinct randomness sources.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "at least one source");
        EuclidLeaderElection {
            k,
            history: Vec::new(),
            freeze_round: None,
            my_group: 0,
            port_group: Vec::new(),
            port_active: Vec::new(),
            self_active: true,
            sizes: Vec::new(),
            pair: None,
            matched_self: false,
            matched_a_count: 0,
            bit_buffer: Vec::new(),
            decided: None,
        }
    }

    /// Deterministic pair selection: the two smallest non-empty groups,
    /// ties broken by group id. Returns `(A, B)` with `|A| ≤ |B|`.
    fn select_pair(&self) -> Option<(usize, usize)> {
        let mut live: Vec<usize> = (0..self.sizes.len())
            .filter(|&g| self.sizes[g] > 0)
            .collect();
        live.sort_by_key(|&g| (self.sizes[g], g));
        match live.as_slice() {
            [a, b, ..] => Some((*a, *b)),
            _ => None,
        }
    }

    /// The smallest group id of size exactly one, if any.
    fn winner_group(&self) -> Option<usize> {
        (0..self.sizes.len()).find(|&g| self.sizes[g] == 1)
    }

    /// Concludes the election once a singleton group exists.
    fn try_decide(&mut self) -> bool {
        if let Some(g) = self.winner_group() {
            self.decided = Some(if self.self_active && self.my_group == g {
                Role::Leader
            } else {
                Role::Follower
            });
            true
        } else {
            false
        }
    }

    /// Starts the next matching iteration (or decides), after group sizes
    /// changed.
    fn next_iteration(&mut self) -> bool {
        if self.try_decide() {
            return true;
        }
        self.pair = self.select_pair();
        self.matched_self = false;
        self.matched_a_count = 0;
        false
    }

    /// Uniform index in `0..m` by rejection sampling from the shared bit
    /// stream (identical across a group — by design).
    fn draw_index(&mut self, m: usize) -> Option<usize> {
        if m == 1 {
            return Some(0);
        }
        let needed = usize::BITS as usize - (m - 1).leading_zeros() as usize;
        if self.bit_buffer.len() < needed {
            return None;
        }
        let bits: Vec<bool> = self.bit_buffer.drain(..needed).collect();
        let v = bits
            .iter()
            .fold(0usize, |acc, &b| acc << 1 | usize::from(b));
        (v < m).then_some(v)
    }

    /// Ports of this node leading to active members of group `g`.
    fn active_ports_of_group(&self, g: usize) -> Vec<usize> {
        self.port_group
            .iter()
            .zip(&self.port_active)
            .enumerate()
            .filter(|(_, (pg, act))| **pg == g && **act)
            .map(|(i, _)| i + 1)
            .collect()
    }

    fn discovery_round(
        &mut self,
        ctx: RoundCtx,
        ports: &[Option<EuclidMsg>],
    ) -> Outgoing<EuclidMsg> {
        if ctx.n == 1 {
            self.decided = Some(Role::Leader);
            return Outgoing::Silent;
        }
        if ctx.round > 1 {
            // Everyone's strings from the previous round, in port order.
            let others: Vec<Vec<bool>> = ports
                .iter()
                .map(|m| match m {
                    Some(EuclidMsg::Hist(h)) => h.clone(),
                    other => panic!("discovery expects Hist, got {other:?}"),
                })
                .collect();
            let mine = self.history.clone();
            let mut distinct: Vec<&Vec<bool>> =
                others.iter().chain(std::iter::once(&mine)).collect();
            distinct.sort();
            distinct.dedup();
            if distinct.len() == self.k {
                // Freeze: group ids by sorted string rank.
                self.my_group = distinct.binary_search(&&mine).expect("present");
                self.port_group = others
                    .iter()
                    .map(|s| distinct.binary_search(&s).expect("present"))
                    .collect();
                self.port_active = vec![true; ports.len()];
                self.sizes = vec![0; self.k];
                self.sizes[self.my_group] += 1;
                for &g in &self.port_group {
                    self.sizes[g] += 1;
                }
                self.freeze_round = Some(ctx.round);
                self.next_iteration();
                return Outgoing::Silent;
            }
        }
        self.history.push(ctx.bit);
        Outgoing::Broadcast(EuclidMsg::Hist(self.history.clone()))
    }

    fn matching_round(
        &mut self,
        ctx: RoundCtx,
        ports: &[Option<EuclidMsg>],
    ) -> Outgoing<EuclidMsg> {
        self.bit_buffer.push(ctx.bit);
        let freeze = self.freeze_round.expect("frozen");
        let (ga, gb) = match self.pair {
            Some(p) => p,
            None => return Outgoing::Silent, // stuck: gcd > 1 dead end
        };
        match (ctx.round - freeze - 1) % 3 {
            // R1: count AnnA; close the iteration when A is exhausted;
            // otherwise unmatched A-members request a random B-port.
            0 => {
                self.matched_a_count += ports
                    .iter()
                    .filter(|m| **m == Some(EuclidMsg::AnnA))
                    .count();
                if self.matched_a_count >= self.sizes[ga] {
                    self.sizes[gb] -= self.sizes[ga];
                    if self.next_iteration() {
                        return Outgoing::Silent;
                    }
                }
                let (ga, gb) = match self.pair {
                    Some(p) => p,
                    None => return Outgoing::Silent, // gcd > 1 dead end
                };
                if self.self_active && self.my_group == ga && !self.matched_self {
                    let targets = self.active_ports_of_group(gb);
                    debug_assert!(!targets.is_empty(), "B side exhausted prematurely");
                    if let Some(i) = self.draw_index(targets.len()) {
                        return Outgoing::Send(vec![(targets[i], EuclidMsg::Req)]);
                    }
                }
                Outgoing::Silent
            }
            // R2: unmatched active B-members accept the minimal requester.
            1 => {
                if self.self_active && self.my_group == gb && !self.matched_self {
                    let requesters: Vec<usize> = ports
                        .iter()
                        .enumerate()
                        .filter(|(_, m)| **m == Some(EuclidMsg::Req))
                        .map(|(i, _)| i + 1)
                        .collect();
                    if let Some(&min_port) = requesters.first() {
                        self.matched_self = true;
                        self.self_active = false; // deactivated for good
                        let mut out = vec![(min_port, EuclidMsg::Ack)];
                        for p in 1..ctx.n {
                            if p != min_port {
                                out.push((p, EuclidMsg::AnnB));
                            }
                        }
                        return Outgoing::Send(out);
                    }
                }
                Outgoing::Silent
            }
            // R3: record deactivated B-members; acknowledged A-members
            // announce their match.
            _ => {
                let mut acked = false;
                for (i, m) in ports.iter().enumerate() {
                    match m {
                        Some(EuclidMsg::Ack) => {
                            acked = true;
                            self.port_active[i] = false;
                        }
                        Some(EuclidMsg::AnnB) => {
                            self.port_active[i] = false;
                        }
                        _ => {}
                    }
                }
                if acked && self.self_active && self.my_group == ga && !self.matched_self {
                    self.matched_self = true;
                    self.matched_a_count += 1;
                    return Outgoing::Broadcast(EuclidMsg::AnnA);
                }
                Outgoing::Silent
            }
        }
    }
}

impl Protocol for EuclidLeaderElection {
    type Msg = EuclidMsg;
    type Output = Role;

    fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<EuclidMsg>) -> Outgoing<EuclidMsg> {
        if self.decided.is_some() {
            return Outgoing::Silent;
        }
        let ports = incoming.ports_view().expect("runs under message passing");
        if self.freeze_round.is_none() {
            self.discovery_round(ctx, &ports)
        } else {
            self.matching_round(ctx, &ports)
        }
    }

    fn output(&self) -> Option<Role> {
        self.decided
    }

    fn msg_bytes(msg: &EuclidMsg) -> usize {
        msg.wire_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsbt_random::{gcd, Assignment};
    use rsbt_sim::runner::{run, RunOutcome};
    use rsbt_sim::{Model, PortNumbering};

    use crate::role::leader_count;

    fn elect(
        sizes: &[usize],
        ports: PortNumbering,
        seed: u64,
        max_rounds: usize,
    ) -> RunOutcome<Role> {
        let alpha = Assignment::from_group_sizes(sizes).unwrap();
        let k = sizes.len();
        let mut rng = StdRng::seed_from_u64(seed);
        run(
            &Model::MessagePassing(ports),
            &alpha,
            max_rounds,
            || EuclidLeaderElection::new(k),
            &mut rng,
        )
    }

    #[test]
    fn gcd_one_elects_exactly_one_random_ports() {
        for (sizes, seeds) in [
            (vec![2usize, 3], 0..8u64),
            (vec![1, 2], 0..8),
            (vec![3, 4], 0..4),
            (vec![2, 2, 3], 0..4),
        ] {
            let n: usize = sizes.iter().sum();
            for seed in seeds {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
                let ports = PortNumbering::random(n, &mut rng);
                let out = elect(&sizes, ports, seed, 6000);
                assert!(out.completed, "{sizes:?} seed {seed} timed out");
                assert_eq!(leader_count(&out.outputs), 1, "{sizes:?} seed {seed}");
            }
        }
    }

    #[test]
    fn gcd_one_elects_even_on_adversarial_ports() {
        // Theorem 4.2 'if': gcd 1 beats EVERY numbering — including the
        // Lemma 4.3 construction built for g = 1 (a valid numbering).
        for seed in 0..5 {
            let ports = PortNumbering::adversarial(5, 1);
            let out = elect(&[2, 3], ports, seed, 6000);
            assert!(out.completed, "seed {seed}");
            assert_eq!(leader_count(&out.outputs), 1);
        }
    }

    #[test]
    fn gcd_greater_than_one_stalls_on_adversarial_ports() {
        // Theorem 4.2 'only if': sizes [2,2] with the adversarial
        // numbering; the protocol must never elect anyone.
        for seed in 0..5 {
            let ports = PortNumbering::adversarial(4, 2);
            let out = elect(&[2, 2], ports, seed, 600);
            assert!(!out.completed, "seed {seed}: [2,2] must stall");
            assert_eq!(leader_count(&out.outputs), 0);
        }
    }

    #[test]
    fn shared_source_stalls() {
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(seed);
            let ports = PortNumbering::random(3, &mut rng);
            let out = elect(&[3], ports, seed, 400);
            assert!(!out.completed);
        }
    }

    #[test]
    fn single_node_trivially_leads() {
        let ports = PortNumbering::cyclic(1);
        let out = elect(&[1], ports, 0, 4);
        assert!(out.completed);
        assert_eq!(out.outputs, vec![Some(Role::Leader)]);
    }

    #[test]
    fn private_randomness_elects() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed + 99);
            let ports = PortNumbering::random(4, &mut rng);
            let out = elect(&[1, 1, 1, 1], ports, seed, 6000);
            assert!(out.completed, "seed {seed}");
            assert_eq!(leader_count(&out.outputs), 1);
        }
    }

    #[test]
    fn leader_comes_from_a_singleton_capable_group() {
        // With sizes [1, 4] the singleton node always wins discovery
        // immediately (its group has size 1 at freeze).
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed + 7);
            let ports = PortNumbering::random(5, &mut rng);
            let out = elect(&[1, 4], ports, seed, 2000);
            assert!(out.completed);
            assert_eq!(out.outputs[0], Some(Role::Leader), "seed {seed}");
        }
    }

    #[test]
    fn subtractive_sizes_respect_gcd_invariant() {
        // Pure state-machine check of the pair-selection arithmetic.
        let mut node = EuclidLeaderElection::new(3);
        node.sizes = vec![4, 6, 9];
        let g0 = gcd::gcd_many(&[4, 6, 9]);
        while let Some((a, b)) = node.select_pair() {
            if node.sizes[a] == 1 || node.sizes[b] == 1 {
                break;
            }
            node.sizes[b] -= node.sizes[a];
            let live: Vec<u64> = node
                .sizes
                .iter()
                .filter(|&&s| s > 0)
                .map(|&s| s as u64)
                .collect();
            assert_eq!(gcd::gcd_many(&live), g0, "gcd invariant");
        }
        assert_eq!(node.winner_group(), Some(2));
    }
}
