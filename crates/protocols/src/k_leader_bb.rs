//! Blackboard `k`-leader election: elect *exactly* `k` leaders.
//!
//! Generalizes the Theorem 4.1 algorithm. Every node posts its randomness
//! string each round; all nodes see the same multiset of `n` strings and
//! hence the same partition into equality classes. As soon as some
//! sub-collection of classes has sizes summing to exactly `k`, everyone
//! agrees on the lexicographically first such sub-collection, and its
//! members are the leaders. This realizes, algorithmically, the
//! framework's characterization exercised by `exp_two_leader`: blackboard
//! `k`-LE is eventually solvable iff the group sizes admit a sub-multiset
//! of classes that can sum to `k` (for `k = 2`: a source of size 2 or two
//! singleton sources).

use rsbt_sim::net::Wire;
use rsbt_sim::runner::{Incoming, Outgoing, Protocol, RoundCtx};

use crate::role::Role;

/// The blackboard exactly-`k`-leaders protocol.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rsbt_protocols::{KLeaderBlackboard, Role};
/// use rsbt_random::Assignment;
/// use rsbt_sim::{runner, Model};
///
/// // Sizes [2, 2]: a whole pair can be elected as the 2 leaders.
/// let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let out = runner::run(&Model::Blackboard, &alpha, 128, || KLeaderBlackboard::new(2), &mut rng);
/// assert!(out.completed);
/// let leaders = out.outputs.iter().filter(|o| **o == Some(Role::Leader)).count();
/// assert_eq!(leaders, 2);
/// ```
#[derive(Clone, Debug)]
pub struct KLeaderBlackboard {
    k: usize,
    history: Vec<bool>,
    decided: Option<Role>,
}

impl KLeaderBlackboard {
    /// Creates a fresh node for the exactly-`k`-leaders task.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need k ≥ 1");
        KLeaderBlackboard {
            k,
            history: Vec::new(),
            decided: None,
        }
    }

    /// Finds the lexicographically first set of classes with sizes summing
    /// to `k`. Classes are given as (representative string, size) sorted by
    /// string; the result is the indices of the chosen classes.
    fn choose_classes(sizes: &[usize], k: usize) -> Option<Vec<usize>> {
        // Greedy-lexicographic subset-sum via backtracking over indices in
        // order: pick the first feasible branch.
        fn rec(sizes: &[usize], k: usize, from: usize, chosen: &mut Vec<usize>) -> bool {
            if k == 0 {
                return true;
            }
            for i in from..sizes.len() {
                if sizes[i] <= k {
                    chosen.push(i);
                    if rec(sizes, k - sizes[i], i + 1, chosen) {
                        return true;
                    }
                    chosen.pop();
                }
            }
            false
        }
        let mut chosen = Vec::new();
        rec(sizes, k, 0, &mut chosen).then_some(chosen)
    }
}

impl Protocol for KLeaderBlackboard {
    type Msg = Vec<bool>;
    type Output = Role;

    fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<Vec<bool>>) -> Outgoing<Vec<bool>> {
        if self.decided.is_some() {
            return Outgoing::Silent;
        }
        if ctx.round > 1 {
            let board = incoming.board_view().expect("runs on a blackboard");
            let mine = self.history.clone();
            let mut all: Vec<&Vec<bool>> = board.iter().collect();
            all.push(&mine);
            all.sort();
            // Classes in lexicographic order of their representative.
            let mut reps: Vec<&Vec<bool>> = Vec::new();
            let mut sizes: Vec<usize> = Vec::new();
            for s in &all {
                match reps.last() {
                    Some(last) if *last == *s => *sizes.last_mut().expect("non-empty") += 1,
                    _ => {
                        reps.push(s);
                        sizes.push(1);
                    }
                }
            }
            if let Some(chosen) = KLeaderBlackboard::choose_classes(&sizes, self.k) {
                let my_class = reps
                    .iter()
                    .position(|r| **r == mine)
                    .expect("own string present");
                self.decided = Some(if chosen.contains(&my_class) {
                    Role::Leader
                } else {
                    Role::Follower
                });
                return Outgoing::Silent;
            }
        } else if ctx.n == 1 && self.k == 1 {
            self.decided = Some(Role::Leader);
            return Outgoing::Silent;
        }
        self.history.push(ctx.bit);
        Outgoing::Post(self.history.clone())
    }

    fn output(&self) -> Option<Role> {
        self.decided
    }

    fn msg_bytes(msg: &Vec<bool>) -> usize {
        msg.wire_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsbt_random::Assignment;
    use rsbt_sim::{runner, Model};

    use crate::role::leader_count;

    fn elect(sizes: &[usize], k: usize, seed: u64, cap: usize) -> runner::RunOutcome<Role> {
        let alpha = Assignment::from_group_sizes(sizes).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        runner::run(
            &Model::Blackboard,
            &alpha,
            cap,
            || KLeaderBlackboard::new(k),
            &mut rng,
        )
    }

    #[test]
    fn k1_matches_leader_election_semantics() {
        for seed in 0..10 {
            let out = elect(&[1, 1, 1], 1, seed, 128);
            assert!(out.completed);
            assert_eq!(leader_count(&out.outputs), 1);
        }
    }

    #[test]
    fn pair_source_elects_two() {
        for seed in 0..10 {
            let out = elect(&[2, 2], 2, seed, 128);
            assert!(out.completed, "seed {seed}");
            assert_eq!(leader_count(&out.outputs), 2);
            // The two leaders share a source: nodes 0,1 or nodes 2,3.
            let leaders: Vec<usize> = out
                .outputs
                .iter()
                .enumerate()
                .filter(|(_, o)| **o == Some(Role::Leader))
                .map(|(i, _)| i)
                .collect();
            assert!(
                leaders == vec![0, 1] || leaders == vec![2, 3],
                "{leaders:?}"
            );
        }
    }

    #[test]
    fn two_singletons_elect_two() {
        for seed in 0..10 {
            let out = elect(&[1, 1, 3], 2, seed, 256);
            assert!(out.completed, "seed {seed}");
            assert_eq!(leader_count(&out.outputs), 2);
        }
    }

    #[test]
    fn unsolvable_profile_stalls() {
        // [3, 1] cannot produce classes summing to 2 (classes are unions
        // of groups; possible profiles: {3,1} or {4}).
        for seed in 0..5 {
            let out = elect(&[3, 1], 2, seed, 64);
            assert!(!out.completed, "seed {seed}");
        }
    }

    #[test]
    fn choose_classes_lexicographic() {
        assert_eq!(
            KLeaderBlackboard::choose_classes(&[1, 1, 3], 2),
            Some(vec![0, 1])
        );
        assert_eq!(KLeaderBlackboard::choose_classes(&[3, 2], 2), Some(vec![1]));
        assert_eq!(KLeaderBlackboard::choose_classes(&[3, 1], 2), None);
        assert_eq!(
            KLeaderBlackboard::choose_classes(&[2, 1, 1], 4),
            Some(vec![0, 1, 2])
        );
        assert_eq!(KLeaderBlackboard::choose_classes(&[], 1), None);
    }

    #[test]
    fn all_nodes_leaders_when_k_equals_n() {
        let out = elect(&[2, 1], 3, 3, 64);
        assert!(out.completed);
        assert_eq!(leader_count(&out.outputs), 3);
    }
}
