//! Blackboard leader election (Theorem 4.1, 'if' direction).
//!
//! Every round, each node posts the bit string it has received from its
//! randomness source so far. At the start of round `r + 1` every node sees
//! the same multiset of `n` length-`r` strings (the `n − 1` board entries
//! plus its own). As soon as some string is *unique* in that multiset, all
//! nodes agree deterministically on the leader: the holder of the
//! lexicographically smallest unique string. Under a configuration with a
//! singleton source this happens eventually with probability 1; with no
//! singleton source, no string is ever unique and the protocol runs
//! forever — exactly the dichotomy of Theorem 4.1.

use rsbt_sim::net::Wire;
use rsbt_sim::runner::{Incoming, Outgoing, Protocol, RoundCtx};

use crate::role::Role;

/// The blackboard leader-election protocol.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rsbt_protocols::{BlackboardLeaderElection, Role};
/// use rsbt_random::Assignment;
/// use rsbt_sim::{runner, Model};
///
/// let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let out = runner::run(
///     &Model::Blackboard,
///     &alpha,
///     64,
///     BlackboardLeaderElection::new,
///     &mut rng,
/// );
/// assert!(out.completed);
/// let leaders = out.outputs.iter().filter(|o| **o == Some(Role::Leader)).count();
/// assert_eq!(leaders, 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BlackboardLeaderElection {
    /// Bits received so far (the string this node posts).
    history: Vec<bool>,
    decided: Option<Role>,
}

impl BlackboardLeaderElection {
    /// Creates a fresh, undecided node.
    pub fn new() -> Self {
        BlackboardLeaderElection::default()
    }
}

impl Protocol for BlackboardLeaderElection {
    type Msg = Vec<bool>;
    type Output = Role;

    fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<Vec<bool>>) -> Outgoing<Vec<bool>> {
        if self.decided.is_some() {
            return Outgoing::Silent;
        }
        // The board carries everyone's strings from the previous round;
        // compare them (plus our own previous string) for uniqueness.
        if ctx.round > 1 {
            let board = incoming.board_view().expect("runs on a blackboard");
            let mine: Vec<bool> = self.history.clone();
            let mut all: Vec<&Vec<bool>> = board.iter().collect();
            all.push(&mine);
            all.sort();
            // Lexicographically smallest string occurring exactly once.
            let winner = all
                .iter()
                .enumerate()
                .find(|(i, s)| {
                    let prev_same = *i > 0 && all[i - 1] == **s;
                    let next_same = *i + 1 < all.len() && all[i + 1] == **s;
                    !prev_same && !next_same
                })
                .map(|(_, s)| (*s).clone());
            if let Some(w) = winner {
                self.decided = Some(if w == mine {
                    Role::Leader
                } else {
                    Role::Follower
                });
                return Outgoing::Silent;
            }
        } else if ctx.n == 1 {
            // Alone in the system: trivially the leader.
            self.decided = Some(Role::Leader);
            return Outgoing::Silent;
        }
        self.history.push(ctx.bit);
        Outgoing::Post(self.history.clone())
    }

    fn output(&self) -> Option<Role> {
        self.decided
    }

    fn msg_bytes(msg: &Vec<bool>) -> usize {
        msg.wire_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsbt_random::Assignment;
    use rsbt_sim::{runner, Model};

    use crate::role::leader_count;

    fn elect(sizes: &[usize], seed: u64, max_rounds: usize) -> runner::RunOutcome<Role> {
        let alpha = Assignment::from_group_sizes(sizes).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        runner::run(
            &Model::Blackboard,
            &alpha,
            max_rounds,
            BlackboardLeaderElection::new,
            &mut rng,
        )
    }

    #[test]
    fn private_randomness_elects_exactly_one() {
        for seed in 0..30 {
            let out = elect(&[1, 1, 1, 1], seed, 128);
            assert!(out.completed, "seed {seed}");
            assert_eq!(leader_count(&out.outputs), 1, "seed {seed}");
        }
    }

    #[test]
    fn singleton_source_suffices() {
        for seed in 0..30 {
            let out = elect(&[1, 3], seed, 128);
            assert!(out.completed, "seed {seed}");
            assert_eq!(leader_count(&out.outputs), 1, "seed {seed}");
        }
    }

    #[test]
    fn no_singleton_never_terminates() {
        for seed in 0..10 {
            let out = elect(&[2, 2], seed, 64);
            assert!(!out.completed, "seed {seed}: [2,2] must not elect");
            assert_eq!(leader_count(&out.outputs), 0);
        }
    }

    #[test]
    fn shared_source_never_terminates() {
        let out = elect(&[3], 5, 64);
        assert!(!out.completed);
    }

    #[test]
    fn single_node_is_immediate_leader() {
        let out = elect(&[1], 0, 4);
        assert!(out.completed);
        assert_eq!(out.outputs, vec![Some(Role::Leader)]);
    }

    #[test]
    fn leader_is_in_a_singleton_group_when_groups_differ() {
        // With sizes [1, 2], only node 0 can ever be elected: nodes 1 and 2
        // always share a string.
        for seed in 0..20 {
            let out = elect(&[1, 2], seed, 128);
            assert!(out.completed);
            assert_eq!(out.outputs[0], Some(Role::Leader), "seed {seed}");
            assert_eq!(out.outputs[1], Some(Role::Follower));
            assert_eq!(out.outputs[2], Some(Role::Follower));
        }
    }

    #[test]
    fn all_nodes_decide_in_the_same_round() {
        let out = elect(&[1, 1, 1], 9, 128);
        assert!(out.completed);
        assert!(out.outputs.iter().all(Option::is_some));
    }
}
