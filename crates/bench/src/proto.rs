//! Protocol-level Monte-Carlo rows: the choreography estimator backend
//! ([`rsbt_protocols::choreo::McBackend`]) surfaced as
//! `rsbt-bench-report/v2` sweep rows.
//!
//! Where [`crate::sweep`] estimates *task solvability* (does the
//! knowledge structure admit a solution at time `t`?), this module
//! estimates *protocol behaviour*: the probability that an executable,
//! projected protocol has actually decided by round `r`, plus its
//! per-run message/byte costs. The row shape is the same v2 schema —
//! `series[r-1]` is the cumulative completion probability by round `r`,
//! with per-round Wilson bounds in `ci_lo`/`ci_hi` — so existing report
//! tooling reads protocol rows unchanged.
//!
//! Determinism matches the sweep engine's: every point derives its seed
//! from the spec's base seed and the point's identity
//! (`model label × protocol name × group sizes`), and the backend keys
//! per-sample streams by `(seed, sample)`, never by the executing
//! thread — a row is a pure function of the spec.

use rsbt_core::eventual;
use rsbt_protocols::choreo::{
    Backend, Choreography, McBackend, NodeMsg, NodeOutput, ProtocolEstimate, RunJob,
};
use rsbt_random::Assignment;
use rsbt_sim::net::Wire;
use rsbt_sim::Model;

use crate::sweep::{point_seed, McRow, RowMode, SweepRow};
use crate::{fmt_sizes, Table};

/// A protocol-level Monte-Carlo configuration, applied point by point via
/// [`ProtoMc::estimate`].
#[derive(Clone, Copy, Debug)]
pub struct ProtoMc {
    /// Samples per estimated point.
    pub samples: u64,
    /// Base seed; each point folds in its own identity (see
    /// [`crate::sweep::McSweep::seed`] for the derivation contract).
    pub seed: u64,
    /// Round cap per sample — also the emitted series length.
    pub max_rounds: usize,
    /// Worker threads for the sample fan-out (estimates are invariant
    /// under this; it only sets the wall-clock).
    pub threads: usize,
}

/// One estimated protocol point: the v2 sweep row plus the raw backend
/// estimate (for counters and custom assertions).
#[derive(Clone, Debug)]
pub struct ProtoMcPoint {
    /// The `rsbt-bench-report/v2` row (mode `"mc"`).
    pub row: SweepRow,
    /// The backend's full estimate, including cost counters.
    pub estimate: ProtocolEstimate,
}

impl ProtoMc {
    /// Estimates one `(choreography, model, α)` point.
    ///
    /// # Panics
    ///
    /// Panics if the choreography does not project onto `model` — bins
    /// pair protocols with their models statically, so a mismatch is a
    /// bin bug, not data.
    pub fn estimate<C>(
        &self,
        choreo: &C,
        model_label: &str,
        model: &Model,
        alpha: &Assignment,
    ) -> ProtoMcPoint
    where
        C: Choreography + Sync,
        C::Node: Send,
        NodeMsg<C>: Wire + Send,
        NodeOutput<C>: Wire + Send,
    {
        let seed = point_seed(self.seed, model_label, choreo.name(), alpha.group_sizes());
        let job = RunJob {
            model,
            alpha,
            max_rounds: self.max_rounds,
            seed,
        };
        let estimate = McBackend {
            samples: self.samples,
            threads: self.threads,
        }
        .run(choreo, &job)
        .expect("bin pairs each protocol with a model it projects onto")
        .into_estimate();
        let series = estimate.series();
        let (ci_lo, ci_hi) = (1..=self.max_rounds)
            .map(|r| estimate.round_interval(r))
            .unzip();
        // A positive completion estimate is a solving-run witness, so the
        // zero-one classification is sound on estimates (same argument as
        // the solvability sweeps).
        let limit = eventual::lemma_3_2_limit(&series);
        ProtoMcPoint {
            row: SweepRow {
                model: model_label.into(),
                task: choreo.name().into(),
                sizes: alpha.group_sizes().to_vec(),
                n: alpha.n(),
                k: alpha.k(),
                gcd: alpha.gcd_of_group_sizes(),
                series,
                limit,
                mode: RowMode::Mc,
                mc: Some(McRow {
                    samples: self.samples as usize,
                    seed,
                    ci_lo,
                    ci_hi,
                }),
                crash: None,
                omission: None,
                predicted: None,
                matches: None,
            },
            estimate,
        }
    }
}

/// The per-run cost table of a batch of points: completion probability,
/// mean rounds-to-decision, and message/byte counters averaged over all
/// samples (posts for blackboard protocols, sends for message passing).
pub fn counters_table(points: &[ProtoMcPoint]) -> Table {
    let mut table = Table::new(vec![
        "protocol",
        "model",
        "sizes",
        "p(complete)",
        "mean rounds",
        "posts/run",
        "sends/run",
        "max msg B",
    ]);
    for p in points {
        let est = &p.estimate;
        let per_run = |total: u64| format!("{:.1}", total as f64 / est.samples as f64);
        table.row(vec![
            p.row.task.clone(),
            p.row.model.clone(),
            fmt_sizes(&p.row.sizes),
            format!("{:.4}", est.p),
            if est.successes > 0 {
                format!("{:.1}", est.mean_rounds)
            } else {
                "-".into()
            },
            per_run(est.total_posts),
            per_run(est.total_sends),
            est.max_msg_bytes.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsbt_protocols::choreo::BleChoreo;

    #[test]
    fn proto_point_is_thread_count_invariant_and_well_formed() {
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let spec = ProtoMc {
            samples: 300,
            seed: 42,
            max_rounds: 8,
            threads: 1,
        };
        let serial = spec.estimate(&BleChoreo, "blackboard", &Model::Blackboard, &alpha);
        let parallel = ProtoMc { threads: 4, ..spec }.estimate(
            &BleChoreo,
            "blackboard",
            &Model::Blackboard,
            &alpha,
        );
        assert_eq!(serial.row, parallel.row);
        assert_eq!(serial.row.series.len(), 8);
        assert_eq!(serial.row.mode, RowMode::Mc);
        let mc = serial.row.mc.as_ref().unwrap();
        assert_eq!(mc.ci_lo.len(), 8);
        assert_eq!(mc.ci_hi.len(), 8);
        assert!(serial.row.is_monotone(), "cumulative completion series");
        let table = counters_table(&[serial]);
        assert_eq!(table.len(), 1);
    }
}
