//! The declarative parallel sweep engine behind every `exp_*` binary.
//!
//! The paper's results are verified by exhaustive sweeps over
//! `(model × task × α × t)`. [`SweepSpec`] describes such a sweep
//! declaratively; [`SweepEngine`] executes it with three shared
//! mechanisms the hand-rolled per-bin loops never had:
//!
//! * **memoization** — every exact probability point goes through one
//!   process-wide [`rsbt_core::probability::Cache`], so overlapping points
//!   across report sections (and across specs in one binary) are computed
//!   once;
//! * **parallel fan-out** — uncached points are computed on
//!   [`rsbt_sim::pool::map_with_arena`] workers (per-worker arenas, the
//!   pattern proven bit-identical by `probability::exact_parallel`) and
//!   merged back in deterministic point order, never completion order;
//! * **one-pass series** — a worker computes each point's whole
//!   `p(1..t_max)` series from a *single* execution-tree traversal
//!   (`rsbt_core::engine` tallies solved nodes at every depth), and its
//!   arena persists across the chunk so shared knowledge prefixes are
//!   interned once.
//!
//! The engine's numbers are bit-identical to serial
//! [`rsbt_core::probability::exact`] (asserted by the determinism tests in
//! `tests/engine.rs`).

use std::ops::RangeInclusive;

use rsbt_core::eventual::{self, LimitClass};
use rsbt_core::probability::{self, Cache, Estimate};
use rsbt_random::Assignment;
use rsbt_sim::{pool, FaultSpec, KnowledgeArena, Model, PortNumbering};
use rsbt_tasks::Task;

use crate::report::Json;
use crate::Table;
use crate::{fmt_p, fmt_sizes};

/// A model family, instantiated per assignment (port numberings depend on
/// `n` and, for the adversarial construction, on `gcd(n_1..n_k)`).
pub struct ModelSpec {
    label: String,
    make: Box<dyn Fn(&Assignment) -> Model + Send + Sync>,
}

impl ModelSpec {
    /// The anonymous shared blackboard.
    pub fn blackboard() -> Self {
        ModelSpec::custom("blackboard", |_| Model::Blackboard)
    }

    /// Message passing with the canonical cyclic numbering.
    pub fn cyclic_ports() -> Self {
        ModelSpec::custom("cyclic ports", |alpha| {
            Model::message_passing_cyclic(alpha.n())
        })
    }

    /// Message passing with the Lemma 4.3 adversarial numbering for the
    /// assignment's actual `gcd(n_1..n_k)`.
    pub fn adversarial_ports() -> Self {
        ModelSpec::custom("adversarial ports", |alpha| {
            Model::MessagePassing(PortNumbering::adversarial(
                alpha.n(),
                alpha.gcd_of_group_sizes() as usize,
            ))
        })
    }

    /// An arbitrary labeled model constructor.
    pub fn custom<S, F>(label: S, make: F) -> Self
    where
        S: Into<String>,
        F: Fn(&Assignment) -> Model + Send + Sync + 'static,
    {
        ModelSpec {
            label: label.into(),
            make: Box::new(make),
        }
    }
}

/// A task family, instantiated per system size `n` (tasks like
/// `LeaderAndDeputy::unconstrained(n)` depend on `n`; fixed tasks ignore
/// it).
pub struct TaskSpec {
    make: Box<dyn Fn(usize) -> Box<dyn Task + Send + Sync> + Send + Sync>,
}

impl TaskSpec {
    /// A task family from an explicit per-`n` constructor.
    pub fn new<F>(make: F) -> Self
    where
        F: Fn(usize) -> Box<dyn Task + Send + Sync> + Send + Sync + 'static,
    {
        TaskSpec {
            make: Box::new(make),
        }
    }

    /// A size-independent task, cloned for every sweep point.
    pub fn fixed<T: Task + Clone + Send + Sync + 'static>(task: T) -> Self {
        TaskSpec::new(move |_| Box::new(task.clone()))
    }
}

/// A thread-safe predicate over assignments (filters and theorem checks).
type AlphaPredicate = Box<dyn Fn(&Assignment) -> bool + Send + Sync>;

/// The Monte-Carlo estimator configuration of a sweep
/// ([`SweepSpec::mc`]): rows whose exact series would exceed the
/// enumeration bit budget are estimated instead of clamped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct McSweep {
    /// Samples per estimated point.
    pub samples: usize,
    /// Base seed of the per-point stream families (each point derives a
    /// distinct deterministic seed from this plus its own identity, so
    /// adding or reordering points never reshuffles another point's
    /// draws).
    pub seed: u64,
}

/// A declarative sweep: `models × tasks × group-size profiles of
/// `n ∈ n_range` × t ∈ 1..=t_max(α)`, with `t_max(α) =
/// clamp(t_cap, bit_budget / k(α))` keeping every point inside the exact
/// enumerator's `2^{k·t}` budget — unless a Monte-Carlo estimator is
/// attached ([`SweepSpec::mc`]), in which case rows that the budget
/// would clamp run to the full `t_cap` as estimated (`mode: "mc"`) rows.
pub struct SweepSpec {
    models: Vec<ModelSpec>,
    tasks: Vec<TaskSpec>,
    n_range: RangeInclusive<usize>,
    t_cap: usize,
    bit_budget: usize,
    mc: Option<McSweep>,
    faults: Vec<(f64, f64)>,
    filter: Option<AlphaPredicate>,
    predicate: Option<AlphaPredicate>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec::new()
    }
}

impl SweepSpec {
    /// A spec with the bins' common defaults: blackboard, `n ∈ 2..=6`,
    /// `t ≤ 3`, 16 enumeration bits — no tasks yet.
    pub fn new() -> Self {
        SweepSpec {
            models: Vec::new(),
            tasks: Vec::new(),
            n_range: 2..=6,
            t_cap: 3,
            bit_budget: 16,
            mc: None,
            faults: Vec::new(),
            filter: None,
            predicate: None,
        }
    }

    /// Adds a model family (defaults to blackboard if none added).
    pub fn model(mut self, model: ModelSpec) -> Self {
        self.models.push(model);
        self
    }

    /// Adds a task family.
    pub fn task(mut self, task: TaskSpec) -> Self {
        self.tasks.push(task);
        self
    }

    /// Sets the range of node counts swept.
    pub fn nodes(mut self, n_range: RangeInclusive<usize>) -> Self {
        self.n_range = n_range;
        self
    }

    /// Sets the cap on the series length `t_max`.
    pub fn t_cap(mut self, t_cap: usize) -> Self {
        self.t_cap = t_cap;
        self
    }

    /// Sets the exact-enumeration bit budget (`k·t ≤ bit_budget`).
    pub fn bit_budget(mut self, bit_budget: usize) -> Self {
        self.bit_budget = bit_budget;
        self
    }

    /// Attaches a Monte-Carlo estimator: rows the bit budget would clamp
    /// run to the full `t_cap` as estimated rows instead (deterministic
    /// per-sample streams, so the sweep stays bit-identical for any
    /// worker count).
    pub fn mc(mut self, mc: McSweep) -> Self {
        assert!(mc.samples > 0, "mc sweep needs at least one sample");
        self.mc = Some(mc);
        self
    }

    /// Adds a fault dimension: every `(task, model, α)` triple is swept
    /// once per `(crash, omission)` per-round rate pair, on top of (not
    /// instead of) its fault-free row. Fault rows always run the full
    /// `t_cap` series on the faulted bit-sliced Monte-Carlo kernel —
    /// random fault schedules have no exact enumerator — so the spec
    /// must also attach [`SweepSpec::mc`]. The `(0.0, 0.0)` point is
    /// allowed and routes through the faulted kernel too, where it is
    /// bit-identical to the fault-free estimator (the PR 8 invariant).
    ///
    /// # Panics
    ///
    /// Panics when a rate is outside `[0, 1]`.
    pub fn faults(mut self, points: Vec<(f64, f64)>) -> Self {
        for &(crash, omission) in &points {
            assert!(
                (0.0..=1.0).contains(&crash) && (0.0..=1.0).contains(&omission),
                "fault rates must be probabilities, got ({crash}, {omission})"
            );
        }
        self.faults = points;
        self
    }

    /// Restricts the sweep to assignments accepted by `filter`.
    pub fn filter<F>(mut self, filter: F) -> Self
    where
        F: Fn(&Assignment) -> bool + Send + Sync + 'static,
    {
        self.filter = Some(Box::new(filter));
        self
    }

    /// Attaches the theorem's predicted eventual-solvability predicate;
    /// every row then carries `predicted` and `matches` columns.
    pub fn predicate<F>(mut self, predicate: F) -> Self
    where
        F: Fn(&Assignment) -> bool + Send + Sync + 'static,
    {
        self.predicate = Some(Box::new(predicate));
        self
    }

    /// The series length for one assignment under this spec's budget.
    pub fn t_max(&self, alpha: &Assignment) -> usize {
        self.t_cap.min(self.bit_budget / alpha.k().max(1)).max(1)
    }

    /// How one assignment's row is produced: `(t_max, estimated)`. Exact
    /// rows keep the clamped [`SweepSpec::t_max`]; with an estimator
    /// attached, any row the budget would clamp below `t_cap` instead
    /// runs the full series by Monte-Carlo.
    pub fn row_plan(&self, alpha: &Assignment) -> (usize, bool) {
        let exact_reach = self.bit_budget / alpha.k().max(1);
        match self.mc {
            Some(_) if self.t_cap > exact_reach => (self.t_cap, true),
            _ => (self.t_max(alpha), false),
        }
    }
}

/// How a sweep row's series was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowMode {
    /// Exact integer counts, within the tree engines' historical reach
    /// (`k·t ≤` [`probability::TREE_EXACT_BITS`]).
    Exact,
    /// Exact integer counts that only the quotient DP engine can produce
    /// (`k·t >` [`probability::TREE_EXACT_BITS`], up to the 126-bit
    /// dyadic budget). Same exactness contract as [`RowMode::Exact`] —
    /// the tag exists so report consumers can tell which rows the old
    /// engine could not have emitted.
    ExactDp,
    /// Deterministic parallel Monte-Carlo estimation.
    Mc,
}

impl RowMode {
    /// The schema string (`"exact"` / `"exact-dp"` / `"mc"`).
    pub fn as_str(self) -> &'static str {
        match self {
            RowMode::Exact => "exact",
            RowMode::ExactDp => "exact-dp",
            RowMode::Mc => "mc",
        }
    }

    /// Whether the row's series is exact integer ratios (either exact
    /// tag) rather than estimated.
    pub fn is_exact(self) -> bool {
        self != RowMode::Mc
    }
}

/// The estimator companion data of a Monte-Carlo row.
#[derive(Clone, Debug, PartialEq)]
pub struct McRow {
    /// Samples drawn per series point.
    pub samples: usize,
    /// The row's derived stream-family seed — shared by every `t` of the
    /// series, so sample `i` at time `t` is the `t`-round prefix of
    /// sample `i` at any later time (common random numbers: the
    /// estimated series is exactly monotone, and the per-`t` estimates
    /// are positively correlated, shrinking the series' relative noise).
    pub seed: u64,
    /// Lower 95% Wilson bounds, parallel to `series`.
    pub ci_lo: Vec<f64>,
    /// Upper 95% Wilson bounds, parallel to `series`.
    pub ci_hi: Vec<f64>,
}

/// One sweep point's result: the `p(1..t_max)` series for a
/// `(model, task, α)` triple plus its zero-one-law classification.
///
/// The classification stays sound for estimated rows: any positive
/// estimate means some sample solved, i.e. a positive-probability
/// solving realization exists — exactly a Lemma 3.2 witness, so the
/// limit is 1 regardless of the estimate's noise.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRow {
    /// Model label from the [`ModelSpec`].
    pub model: String,
    /// Task name ([`Task::name`]).
    pub task: String,
    /// Group sizes `n_1..n_k` of the assignment.
    pub sizes: Vec<usize>,
    /// Node count `n`.
    pub n: usize,
    /// Source count `k`.
    pub k: usize,
    /// `gcd(n_1..n_k)` (Theorem 4.2's quantity).
    pub gcd: u64,
    /// Probabilities `p(1), …, p(t_max)` (exact or estimated per `mode`).
    pub series: Vec<f64>,
    /// Zero-one-law classification of the series.
    pub limit: LimitClass,
    /// How the series was produced.
    pub mode: RowMode,
    /// Estimator companion data (`mode == Mc` rows only).
    pub mc: Option<McRow>,
    /// Per-round crash probability (fault-dimension rows only).
    pub crash: Option<f64>,
    /// Per-round omission probability (fault-dimension rows only).
    pub omission: Option<f64>,
    /// The spec predicate's verdict, when one was attached.
    pub predicted: Option<bool>,
    /// Whether the observed limit matches `predicted`.
    pub matches: Option<bool>,
}

impl SweepRow {
    /// Whether the series is monotone non-decreasing (Lemma 3.2 requires
    /// it; exposed so bins can assert it per row).
    pub fn is_monotone(&self) -> bool {
        self.series.windows(2).all(|w| w[1] >= w[0] - 1e-12)
    }

    /// `p(t)` formatted for a table cell, `-` when beyond the series.
    pub fn p_at(&self, t: usize) -> String {
        self.series
            .get(t - 1)
            .map(|p| fmt_p(*p))
            .unwrap_or_else(|| "-".into())
    }

    /// The limit classification as a short string.
    pub fn limit_str(&self) -> String {
        format!("{:?}", self.limit)
    }

    /// The typed JSON object for the report schema.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("model".to_string(), Json::Str(self.model.clone())),
            ("task".to_string(), Json::Str(self.task.clone())),
            (
                "sizes".to_string(),
                Json::Arr(self.sizes.iter().map(|&s| Json::Int(s as i64)).collect()),
            ),
            ("n".to_string(), Json::Int(self.n as i64)),
            ("k".to_string(), Json::Int(self.k as i64)),
            ("gcd".to_string(), Json::Int(self.gcd as i64)),
            (
                "series".to_string(),
                Json::Arr(self.series.iter().map(|&p| Json::Num(p)).collect()),
            ),
            ("limit".to_string(), Json::Str(self.limit_str())),
            ("mode".to_string(), Json::Str(self.mode.as_str().into())),
        ];
        if let Some(mc) = &self.mc {
            pairs.push(("samples".to_string(), Json::Int(mc.samples as i64)));
            // The seed is a full-range u64 (half of all FNV-derived seeds
            // exceed i64::MAX, and JSON integers past 2^53 are hazardous
            // for generic tooling anyway): emit it as a decimal string so
            // the reproduction key round-trips exactly.
            pairs.push(("seed".to_string(), Json::Str(mc.seed.to_string())));
            pairs.push((
                "ci_lo".to_string(),
                Json::Arr(mc.ci_lo.iter().map(|&p| Json::Num(p)).collect()),
            ));
            pairs.push((
                "ci_hi".to_string(),
                Json::Arr(mc.ci_hi.iter().map(|&p| Json::Num(p)).collect()),
            ));
        }
        if let Some(crash) = self.crash {
            pairs.push(("crash".to_string(), Json::Num(crash)));
        }
        if let Some(omission) = self.omission {
            pairs.push(("omission".to_string(), Json::Num(omission)));
        }
        if let Some(p) = self.predicted {
            pairs.push(("predicted".to_string(), Json::Bool(p)));
        }
        if let Some(m) = self.matches {
            pairs.push(("matches".to_string(), Json::Bool(m)));
        }
        Json::Obj(pairs)
    }
}

/// The standard text rendering of sweep rows: model/task columns only when
/// they vary, `p(1..4)` capped, predicted/matches only when present.
pub fn standard_table(rows: &[SweepRow]) -> Table {
    let varies = |f: fn(&SweepRow) -> &str| rows.windows(2).any(|w| f(&w[0]) != f(&w[1]));
    let show_model = varies(|r| &r.model);
    let show_task = varies(|r| &r.task);
    let show_predicted = rows.iter().any(|r| r.predicted.is_some());
    let show_mode = rows.iter().any(|r| r.mode != RowMode::Exact);
    let show_fault = rows.iter().any(|r| r.crash.is_some());
    let series_cols = rows
        .iter()
        .map(|r| r.series.len())
        .max()
        .unwrap_or(0)
        .min(4);
    let mut headers = Vec::new();
    if show_model {
        headers.push("model".to_string());
    }
    if show_task {
        headers.push("task".to_string());
    }
    headers.push("sizes".to_string());
    headers.push("gcd".to_string());
    if show_mode {
        headers.push("mode".to_string());
    }
    if show_fault {
        headers.push("crash".to_string());
        headers.push("omission".to_string());
    }
    if show_predicted {
        headers.push("predicted".to_string());
    }
    for t in 1..=series_cols {
        headers.push(format!("p({t})"));
    }
    headers.push("limit".to_string());
    if show_predicted {
        headers.push("matches".to_string());
    }
    let mut table = Table::new(headers);
    for r in rows {
        let mut cells = Vec::new();
        if show_model {
            cells.push(r.model.clone());
        }
        if show_task {
            cells.push(r.task.clone());
        }
        cells.push(fmt_sizes(&r.sizes));
        cells.push(r.gcd.to_string());
        if show_mode {
            cells.push(r.mode.as_str().to_string());
        }
        if show_fault {
            let rate = |v: Option<f64>| v.map(|p| format!("{p:.2}")).unwrap_or_else(|| "-".into());
            cells.push(rate(r.crash));
            cells.push(rate(r.omission));
        }
        if show_predicted {
            cells.push(
                r.predicted
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
        for t in 1..=series_cols {
            cells.push(r.p_at(t));
        }
        cells.push(r.limit_str());
        if show_predicted {
            cells.push(
                r.matches
                    .map(|m| m.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
        table.row(cells);
    }
    table
}

/// One expanded sweep point, ready for a worker.
struct Point {
    model: Model,
    model_label: String,
    task: Box<dyn Task + Send + Sync>,
    /// [`Task::name`] computed once at expansion, so the per-`t` cache
    /// lookups below are allocation-free.
    task_name: String,
    alpha: Assignment,
    t_max: usize,
    /// Whether this row is estimated instead of enumerated.
    mc: bool,
    /// `(crash, omission)` per-round rates for fault-dimension rows.
    fault: Option<(f64, f64)>,
    predicted: Option<bool>,
}

/// Derives one sweep point's stream-family seed from the spec's base
/// seed and the point's full identity (FNV-1a over the label strings and
/// sizes, folded with the base seed). Stable across processes, thread
/// counts, and sweep composition: adding or removing other points never
/// changes this point's draws.
pub(crate) fn point_seed(base: u64, model_label: &str, task_name: &str, sizes: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let mut absorb = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3); // FNV-1a prime
        }
    };
    absorb(model_label.as_bytes());
    absorb(&[0xff]);
    absorb(task_name.as_bytes());
    absorb(&[0xff]);
    for &s in sizes {
        absorb(&(s as u64).to_le_bytes());
    }
    h ^ base
}

/// The executor: a probability cache, a shared arena for serial one-off
/// evaluations, and a worker budget for sweep fan-out.
pub struct SweepEngine {
    threads: usize,
    cache: Cache,
    arena: KnowledgeArena,
    sweep_hits: u64,
    sweep_misses: u64,
    mc_stats: probability::McStats,
    mc_samples_override: Option<usize>,
    mc_seed_override: Option<u64>,
}

/// The default worker count: available parallelism, capped at 8 (sweep
/// points are short; beyond that spawn overhead dominates).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8)
}

impl SweepEngine {
    /// Creates an engine with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker");
        SweepEngine {
            threads,
            cache: Cache::new(),
            arena: KnowledgeArena::new(),
            sweep_hits: 0,
            sweep_misses: 0,
            mc_stats: probability::McStats::default(),
            mc_samples_override: None,
            mc_seed_override: None,
        }
    }

    /// Overrides the sample count and/or base seed of every Monte-Carlo
    /// sweep mode in subsequent [`SweepEngine::sweep`] calls (the CLI's
    /// `--samples`/`--seed` flags; `None` keeps the spec's value). The
    /// per-point stream seed is still derived via the usual
    /// spec-base-seed hashing, so overriding the seed re-keys every
    /// point coherently.
    pub fn set_mc_overrides(&mut self, samples: Option<usize>, seed: Option<u64>) {
        if let Some(s) = samples {
            assert!(s >= 1, "sample override must be at least 1");
        }
        self.mc_samples_override = samples;
        self.mc_seed_override = seed;
    }

    /// The active `--samples`/`--seed` overrides (bins apply them to
    /// their own non-sweep Monte-Carlo sections too).
    pub fn mc_overrides(&self) -> (Option<usize>, Option<u64>) {
        (self.mc_samples_override, self.mc_seed_override)
    }

    /// Aggregated verdict-path counters of every estimated (Monte-Carlo)
    /// sweep point run so far. Estimated rows run on the bit-sliced
    /// kernel, so `lane_words` counts the 64-sample words processed;
    /// `peeled_lanes` and `dense_scan_verdicts` stay zero whenever all
    /// swept tasks compile lane plans — the `exp_perf_mc` acceptance
    /// gate.
    pub fn mc_stats(&self) -> probability::McStats {
        self.mc_stats
    }

    /// The worker count sweeps fan out over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The engine's shared knowledge arena, for bins running their own
    /// enumeration checks (interning stays amortized across sections).
    pub fn arena(&mut self) -> &mut KnowledgeArena {
        &mut self.arena
    }

    /// Total cached points / hits / misses across every evaluation path.
    pub fn cache_stats(&self) -> (u64, u64, usize) {
        (
            self.cache.hits() + self.sweep_hits,
            self.cache.misses() + self.sweep_misses,
            self.cache.len(),
        )
    }

    /// Cached exact `Pr[S(t) | α]` (serial path, engine arena).
    pub fn exact<T: Task + ?Sized>(
        &mut self,
        model: &Model,
        task: &T,
        alpha: &Assignment,
        t: usize,
    ) -> f64 {
        probability::exact_cached(&mut self.cache, model, task, alpha, t, &mut self.arena)
    }

    /// Cached exact series `p(1..t_max)` (serial path, engine arena).
    pub fn exact_series<T: Task + ?Sized>(
        &mut self,
        model: &Model,
        task: &T,
        alpha: &Assignment,
        t_max: usize,
    ) -> Vec<f64> {
        probability::exact_series_cached(
            &mut self.cache,
            model,
            task,
            alpha,
            t_max,
            &mut self.arena,
        )
    }

    /// Executes a declarative sweep: expands the spec, answers cached
    /// points from memory, fans uncached points out over per-worker-arena
    /// threads, merges deterministically, and returns one row per
    /// `(task, model, α)` triple in expansion order.
    pub fn sweep(&mut self, spec: &SweepSpec) -> Vec<SweepRow> {
        let default_model = [ModelSpec::blackboard()];
        let models: &[ModelSpec] = if spec.models.is_empty() {
            &default_model
        } else {
            &spec.models
        };
        assert!(!spec.tasks.is_empty(), "sweep spec needs at least one task");
        assert!(
            spec.faults.is_empty() || spec.mc.is_some(),
            "a fault dimension needs a Monte-Carlo estimator (SweepSpec::mc): \
             random fault schedules have no exact enumerator"
        );

        let mut points = Vec::new();
        for tspec in &spec.tasks {
            for mspec in models {
                for n in spec.n_range.clone() {
                    for alpha in Assignment::iter_profiles(n) {
                        if spec.filter.as_ref().is_some_and(|f| !f(&alpha)) {
                            continue;
                        }
                        let predicted = spec.predicate.as_ref().map(|p| p(&alpha));
                        // The fault-free row, then one row per fault point
                        // (always estimated: faults force the MC kernel).
                        let plans = std::iter::once(None)
                            .chain(spec.faults.iter().map(|&f| Some(f)))
                            .map(|fault| match fault {
                                None => (spec.row_plan(&alpha), None),
                                Some(f) => ((spec.t_cap, true), Some(f)),
                            });
                        for ((t_max, mc), fault) in plans {
                            let task = (tspec.make)(n);
                            points.push(Point {
                                model: (mspec.make)(&alpha),
                                model_label: mspec.label.clone(),
                                task_name: task.name().into_owned(),
                                task,
                                t_max,
                                mc,
                                fault,
                                predicted,
                                alpha: alpha.clone(),
                            });
                        }
                    }
                }
            }
        }

        // Split cached from uncached at per-t granularity: a point whose
        // prefix was already warmed (e.g. by an earlier `exact()` call)
        // only dispatches its missing suffix, and the hit/miss statistics
        // count exactly what was answered from memory vs computed. The
        // lookups borrow every key component (`peek_named`) — no
        // allocation per probed `t`.
        let mut missing: Vec<(&Point, Vec<usize>)> = Vec::new();
        for p in points.iter().filter(|p| !p.mc) {
            let missing_ts: Vec<usize> = (1..=p.t_max)
                .filter(|&t| {
                    self.cache
                        .peek_named(&p.model, &p.task_name, p.alpha.sources(), t)
                        .is_none()
                })
                .collect();
            self.sweep_hits += (p.t_max - missing_ts.len()) as u64;
            self.sweep_misses += missing_ts.len() as u64;
            if !missing_ts.is_empty() {
                missing.push((p, missing_ts));
            }
        }

        // Parallel fan-out with per-worker arenas: each worker runs ONE
        // execution-tree traversal per point (deep enough for the deepest
        // missing t), reading the whole series off the per-depth tallies —
        // never one enumeration per t.
        let computed = pool::map_with_arena(&missing, self.threads, |arena, (p, ts)| {
            let deepest = *ts.last().expect("missing points have at least one t");
            probability::exact_series_with_arena(
                &p.model,
                p.task.as_ref(),
                &p.alpha,
                deepest,
                arena,
            )
        });

        // Deterministic merge: point order, never completion order.
        for ((p, ts), series) in missing.iter().zip(&computed) {
            for &t in ts {
                self.cache.insert_named(
                    &p.model,
                    &p.task_name,
                    p.alpha.sources(),
                    t,
                    series[t - 1],
                );
            }
        }

        points
            .iter()
            .map(|p| {
                let (series, mc) = if p.mc {
                    let base = spec.mc.expect("mc points imply an mc spec");
                    let eff = McSweep {
                        samples: self.mc_samples_override.unwrap_or(base.samples),
                        seed: self.mc_seed_override.unwrap_or(base.seed),
                    };
                    self.estimate_point(p, eff)
                } else {
                    let series = (1..=p.t_max)
                        .map(|t| {
                            self.cache
                                .peek_named(&p.model, &p.task_name, p.alpha.sources(), t)
                                .expect("merged above")
                        })
                        .collect();
                    (series, None)
                };
                let limit = eventual::lemma_3_2_limit(&series);
                let matches = p.predicted.map(|pred| pred == (limit == LimitClass::One));
                SweepRow {
                    model: p.model_label.clone(),
                    task: p.task_name.clone(),
                    sizes: p.alpha.group_sizes().to_vec(),
                    n: p.alpha.n(),
                    k: p.alpha.k(),
                    gcd: p.alpha.gcd_of_group_sizes(),
                    series,
                    limit,
                    mode: if p.mc {
                        RowMode::Mc
                    } else if p.alpha.k() * p.t_max > probability::TREE_EXACT_BITS {
                        RowMode::ExactDp
                    } else {
                        RowMode::Exact
                    },
                    mc,
                    crash: p.fault.map(|(crash, _)| crash),
                    omission: p.fault.map(|(_, omission)| omission),
                    predicted: p.predicted,
                    matches,
                }
            })
            .collect()
    }

    /// Estimates one Monte-Carlo row's whole series in **one** sampling
    /// pass on the bit-sliced kernel
    /// ([`probability::monte_carlo_bitsliced_series`]): sample `i` at
    /// time `t` is the prefix of sample `i` at `t + 1`, so the series is
    /// exactly monotone, and the estimator is bit-identical for any
    /// worker count — and to the PR 5 scalar kernel on the same seed —
    /// so the row is a pure function of the spec.
    fn estimate_point(&mut self, p: &Point, mc: McSweep) -> (Vec<f64>, Option<McRow>) {
        let seed = point_seed(mc.seed, &p.model_label, &p.task_name, p.alpha.group_sizes());
        // Fault rows share the fault-free row's seed on purpose: the
        // source draws are common random numbers across the whole fault
        // grid, so degradation curves vary only through the schedules.
        let (estimates, stats): (Vec<Estimate>, _) = match p.fault {
            None => probability::monte_carlo_bitsliced_series_with_stats(
                &p.model,
                p.task.as_ref(),
                &p.alpha,
                p.t_max,
                mc.samples,
                seed,
                self.threads,
            ),
            Some((crash, omission)) => {
                probability::monte_carlo_bitsliced_series_faulted_with_stats(
                    &p.model,
                    p.task.as_ref(),
                    &p.alpha,
                    p.t_max,
                    mc.samples,
                    seed,
                    self.threads,
                    &FaultSpec::rates(crash, omission),
                )
            }
        };
        self.mc_stats.merge(&stats);
        (
            estimates.iter().map(|e| e.p).collect(),
            Some(McRow {
                samples: mc.samples,
                seed,
                ci_lo: estimates.iter().map(|e| e.ci_lo).collect(),
                ci_hi: estimates.iter().map(|e| e.ci_hi).collect(),
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsbt_tasks::LeaderElection;

    fn le_spec() -> SweepSpec {
        SweepSpec::new()
            .task(TaskSpec::fixed(LeaderElection))
            .nodes(2..=5)
            .predicate(eventual::blackboard_eventually_solvable)
    }

    #[test]
    fn sweep_matches_theorem_4_1() {
        let mut engine = SweepEngine::new(2);
        let rows = engine.sweep(&le_spec());
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r.matches == Some(true)));
        assert!(rows.iter().all(|r| r.is_monotone()));
    }

    #[test]
    fn second_sweep_is_fully_cached() {
        let mut engine = SweepEngine::new(2);
        let first = engine.sweep(&le_spec());
        let (_, misses_after_first, points) = engine.cache_stats();
        let second = engine.sweep(&le_spec());
        let (hits, misses, points_after) = engine.cache_stats();
        assert_eq!(first, second, "replay must be bit-identical");
        assert_eq!(misses, misses_after_first, "no new computation");
        assert_eq!(points, points_after);
        assert!(hits >= misses_after_first);
    }

    #[test]
    fn standard_table_hides_constant_columns() {
        let mut engine = SweepEngine::new(1);
        let rows = engine.sweep(&le_spec());
        let table = standard_table(&rows);
        let text = table.to_string();
        assert!(!text.contains("blackboard"), "constant model column hidden");
        assert!(text.contains("predicted"));
        assert!(text.contains("matches"));
    }

    #[test]
    fn partially_cached_points_only_compute_missing_suffix() {
        // Warm t = 1, 2 of the [2,1] profile through the serial path.
        let mut engine = SweepEngine::new(2);
        let alpha = Assignment::from_group_sizes(&[2, 1]).unwrap();
        engine.exact(&Model::Blackboard, &LeaderElection, &alpha, 1);
        engine.exact(&Model::Blackboard, &LeaderElection, &alpha, 2);
        let (_, misses_before, _) = engine.cache_stats();
        assert_eq!(misses_before, 2);

        // Profiles of n = 3: [3], [2,1], [1,1,1], each with t_max = 3.
        let spec = SweepSpec::new()
            .task(TaskSpec::fixed(LeaderElection))
            .nodes(3..=3)
            .t_cap(3)
            .bit_budget(12);
        let rows = engine.sweep(&spec);
        let (hits, misses, points) = engine.cache_stats();
        assert_eq!(hits, 2, "warmed prefix answered from memory");
        assert_eq!(misses, 2 + 7, "only the 7 uncached points computed");
        assert_eq!(points, 9);

        // And the suffix-only path is bit-identical to a cold engine.
        let cold = SweepEngine::new(2).sweep(&spec);
        assert_eq!(rows, cold);
    }

    #[test]
    fn exact_dp_mode_tags_rows_past_the_tree_wall() {
        // k = 2 at t_cap = 20 under a 126-bit budget: k·t = 40 >
        // TREE_EXACT_BITS = 30 — exact integer counts only the quotient
        // engine can produce, tagged so report consumers can tell.
        let spec = SweepSpec::new()
            .task(TaskSpec::fixed(LeaderElection))
            .nodes(3..=3)
            .t_cap(20)
            .bit_budget(126)
            .filter(|alpha| alpha.k() == 2);
        let mut engine = SweepEngine::new(2);
        let rows = engine.sweep(&spec);
        assert!(!rows.is_empty());
        for r in &rows {
            assert_eq!(r.mode, RowMode::ExactDp, "{:?}", r.sizes);
            assert!(r.mode.is_exact());
            assert!(r.mc.is_none(), "exact-dp rows carry no estimator data");
            assert_eq!(r.series.len(), 20);
        }
        // [2,1]: one singleton among two sources, p(t) = 1 − 2^{−t} —
        // exactly representable, so the check is bitwise.
        let r = rows.iter().find(|r| r.sizes == vec![2, 1]).unwrap();
        assert_eq!(r.series[19].to_bits(), (1.0 - 0.5f64.powi(20)).to_bits());
        // Any non-plain-exact row makes the mode column visible.
        let text = standard_table(&rows).to_string();
        assert!(text.contains("exact-dp"));
    }

    #[test]
    fn t_max_respects_bit_budget() {
        let spec = SweepSpec::new().t_cap(5).bit_budget(12);
        let a = Assignment::from_group_sizes(&[1, 1, 1, 1]).unwrap(); // k=4
        assert_eq!(spec.t_max(&a), 3);
        let b = Assignment::shared(4); // k=1
        assert_eq!(spec.t_max(&b), 5);
    }

    /// `n = 4`, `t_cap = 4`, budget 8: `k ≤ 2` rows stay exact, `k ≥ 3`
    /// rows overflow the budget and are estimated.
    fn mixed_mode_spec() -> SweepSpec {
        SweepSpec::new()
            .task(TaskSpec::fixed(LeaderElection))
            .nodes(4..=4)
            .t_cap(4)
            .bit_budget(8)
            .mc(McSweep {
                samples: 2_000,
                seed: 7,
            })
            .predicate(eventual::blackboard_eventually_solvable)
    }

    #[test]
    fn mc_mode_opens_rows_beyond_the_bit_budget() {
        let mut engine = SweepEngine::new(2);
        let rows = engine.sweep(&mixed_mode_spec());
        let exact_rows: Vec<_> = rows.iter().filter(|r| r.mode == RowMode::Exact).collect();
        let mc_rows: Vec<_> = rows.iter().filter(|r| r.mode == RowMode::Mc).collect();
        assert!(!exact_rows.is_empty() && !mc_rows.is_empty(), "mixed modes");
        for r in &rows {
            assert_eq!(r.series.len(), 4, "every row runs to t_cap");
            assert_eq!(r.mode == RowMode::Mc, r.k >= 3, "{:?}", r.sizes);
            assert_eq!(r.mc.is_some(), r.mode == RowMode::Mc);
            assert!(
                r.is_monotone(),
                "CRN series must be monotone: {:?}",
                r.sizes
            );
            // Zero-one classification stays right even on estimates (a
            // solved sample is a Lemma 3.2 witness).
            assert_eq!(r.matches, Some(true), "{:?}", r.sizes);
        }
        for r in &mc_rows {
            let mc = r.mc.as_ref().unwrap();
            assert_eq!(mc.samples, 2_000);
            assert_eq!(mc.ci_lo.len(), 4);
            assert_eq!(mc.ci_hi.len(), 4);
            for (i, &p) in r.series.iter().enumerate() {
                assert!(
                    mc.ci_lo[i] <= p && p <= mc.ci_hi[i],
                    "{:?} t={}: {p} outside [{}, {}]",
                    r.sizes,
                    i + 1,
                    mc.ci_lo[i],
                    mc.ci_hi[i]
                );
            }
        }
        // Estimated points bracket the exact value where both are
        // computable ([1,1,2] at t = 2 is inside the exact budget).
        let r = rows
            .iter()
            .find(|r| r.sizes == vec![2, 1, 1] && r.mode == RowMode::Mc)
            .expect("k = 3 row is estimated");
        let alpha = Assignment::from_group_sizes(&[2, 1, 1]).unwrap();
        let exact = probability::exact(&Model::Blackboard, &LeaderElection, &alpha, 2);
        let mc = r.mc.as_ref().unwrap();
        assert!(
            mc.ci_lo[1] <= exact && exact <= mc.ci_hi[1],
            "exact {exact} outside [{}, {}]",
            mc.ci_lo[1],
            mc.ci_hi[1]
        );
        // Counters: built-in tasks compile lane plans, so every sample
        // runs bit-sliced — no peeling, no dense fallback.
        let stats = engine.mc_stats();
        assert!(stats.lane_words > 0);
        assert_eq!(stats.peeled_lanes, 0);
        assert_eq!(stats.dense_scan_verdicts, 0);
    }

    #[test]
    fn mc_overrides_rekey_and_resize_estimated_rows() {
        let mut engine = SweepEngine::new(2);
        engine.set_mc_overrides(Some(512), Some(99));
        assert_eq!(engine.mc_overrides(), (Some(512), Some(99)));
        let rows = engine.sweep(&mixed_mode_spec());
        let mut saw_mc = false;
        for r in rows.iter().filter(|r| r.mode == RowMode::Mc) {
            saw_mc = true;
            let mc = r.mc.as_ref().unwrap();
            assert_eq!(mc.samples, 512, "{:?}", r.sizes);
            assert_eq!(
                mc.seed,
                point_seed(99, &r.model, &r.task, &r.sizes),
                "{:?}",
                r.sizes
            );
        }
        assert!(saw_mc, "spec has estimated rows");
        // Exact rows are untouched by the overrides.
        assert!(rows.iter().any(|r| r.mode == RowMode::Exact));
    }

    #[test]
    fn mc_sweep_is_thread_count_invariant() {
        let rows1 = SweepEngine::new(1).sweep(&mixed_mode_spec());
        for threads in [2usize, 3, 8] {
            let rows = SweepEngine::new(threads).sweep(&mixed_mode_spec());
            assert_eq!(rows, rows1, "threads={threads}");
        }
    }

    #[test]
    fn point_seed_is_stable_and_injective_enough() {
        let a = point_seed(1, "blackboard", "leader-election", &[1, 2]);
        assert_eq!(a, point_seed(1, "blackboard", "leader-election", &[1, 2]));
        assert_ne!(a, point_seed(2, "blackboard", "leader-election", &[1, 2]));
        assert_ne!(a, point_seed(1, "cyclic ports", "leader-election", &[1, 2]));
        assert_ne!(a, point_seed(1, "blackboard", "wsb", &[1, 2]));
        assert_ne!(a, point_seed(1, "blackboard", "leader-election", &[2, 1]));
    }

    /// `n = 3` LE with a fault axis: profiles [3], [2,1] stay exact
    /// fault-free while [1,1,1] overflows the 8-bit budget into MC, and
    /// every profile gains one row per fault point.
    fn faulted_spec() -> SweepSpec {
        SweepSpec::new()
            .task(TaskSpec::fixed(LeaderElection))
            .nodes(3..=3)
            .t_cap(4)
            .bit_budget(8)
            .mc(McSweep {
                samples: 2_000,
                seed: 7,
            })
            .faults(vec![(0.0, 0.0), (0.1, 0.2)])
    }

    #[test]
    fn fault_axis_crosses_every_row() {
        let mut engine = SweepEngine::new(2);
        let rows = engine.sweep(&faulted_spec());
        // 3 profiles × (fault-free + 2 fault points), in expansion order.
        assert_eq!(rows.len(), 9);
        for triple in rows.chunks(3) {
            let [base, zero, faulted] = triple else {
                unreachable!()
            };
            assert!(base.crash.is_none() && base.omission.is_none());
            assert_eq!((zero.crash, zero.omission), (Some(0.0), Some(0.0)));
            assert_eq!((faulted.crash, faulted.omission), (Some(0.1), Some(0.2)));
            for fault_row in [zero, faulted] {
                assert_eq!(fault_row.sizes, base.sizes);
                assert_eq!(fault_row.mode, RowMode::Mc, "faults force the MC kernel");
                assert!(fault_row.mc.is_some());
                assert_eq!(fault_row.series.len(), 4, "fault rows run to t_cap");
                let json = fault_row.to_json();
                assert!(json.get("crash").is_some() && json.get("omission").is_some());
            }
            assert!(base.to_json().get("crash").is_none());
        }
    }

    #[test]
    fn zero_rate_fault_rows_are_bit_identical_to_fault_free_estimates() {
        let mut engine = SweepEngine::new(3);
        let rows = engine.sweep(&faulted_spec());
        // [1,1,1] is estimated even fault-free, so its (0, 0) fault row
        // must reproduce the fault-free estimator bit for bit (same
        // seed, same kernel, structurally no fault RNG at rate zero).
        let base = rows
            .iter()
            .find(|r| r.k == 3 && r.crash.is_none())
            .expect("k = 3 fault-free row is MC");
        assert_eq!(base.mode, RowMode::Mc);
        let zero = rows
            .iter()
            .find(|r| r.k == 3 && r.crash == Some(0.0))
            .expect("k = 3 zero-rate fault row");
        assert_eq!(base.series, zero.series);
        assert_eq!(base.mc, zero.mc);
    }

    #[test]
    fn faulted_sweep_is_thread_count_invariant() {
        let rows1 = SweepEngine::new(1).sweep(&faulted_spec());
        for threads in [2usize, 8] {
            let rows = SweepEngine::new(threads).sweep(&faulted_spec());
            assert_eq!(rows, rows1, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "fault dimension needs a Monte-Carlo estimator")]
    fn fault_axis_without_mc_is_rejected() {
        let spec = SweepSpec::new()
            .task(TaskSpec::fixed(LeaderElection))
            .nodes(3..=3)
            .faults(vec![(0.1, 0.0)]);
        SweepEngine::new(1).sweep(&spec);
    }

    #[test]
    fn exact_only_specs_never_estimate() {
        // Without .mc(), the budget clamps exactly as before.
        let spec = SweepSpec::new()
            .task(TaskSpec::fixed(LeaderElection))
            .nodes(4..=4)
            .t_cap(4)
            .bit_budget(8);
        let rows = SweepEngine::new(2).sweep(&spec);
        assert!(rows.iter().all(|r| r.mode == RowMode::Exact));
        assert!(rows.iter().all(|r| r.mc.is_none()));
        let k3 = rows.iter().find(|r| r.k == 3).unwrap();
        assert_eq!(k3.series.len(), 2, "clamped to the budget");
    }
}
