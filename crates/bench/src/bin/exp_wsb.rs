//! Experiment `wsb` — weak symmetry breaking under the framework.
//!
//! Not a figure of the paper, but the canonical "easier" symmetry-breaking
//! task of the literature it builds on: outputs in {0,1}, not all equal.
//! The framework mechanically yields its blackboard characterization —
//! solvable iff `k ≥ 2` (two sources eventually diverge, and the two
//! sides output different bits) — strictly weaker than leader election's
//! `∃ n_i = 1`.

use std::process::ExitCode;

use rsbt_bench::{run_experiment, SweepSpec, TaskSpec};
use rsbt_tasks::WeakSymmetryBreaking;

fn main() -> ExitCode {
    run_experiment(
        "wsb",
        "Weak symmetry breaking: framework-derived characterization",
        "companion task; cf. Fraigniaud-Gelles-Lotker 2021 Section 1.1 and [HKR14]",
        |eng, rep| {
            let spec = SweepSpec::new()
                .task(TaskSpec::fixed(WeakSymmetryBreaking))
                .nodes(2..=6)
                .t_cap(3)
                .bit_budget(16)
                .predicate(|alpha| alpha.k() >= 2);
            let rows = eng.sweep(&spec);
            let all_match = rows.iter().all(|r| r.matches == Some(true));
            let section = rep.section("blackboard WSB sweep (predicted = k ≥ 2)");
            section.sweep("weak symmetry breaking", rows);
            section.note("framework-derived: blackboard WSB is eventually solvable ⟺ k ≥ 2.");
            section.note(format!("all profiles match: {all_match}"));
            section.note("");
            section.note("contrast: leader election needs ∃ n_i = 1 — e.g. sizes [2,2] solve");
            section.note("WSB but not LE, exhibiting the strict separation between the tasks.");
        },
    )
}
