//! Experiment `wsb` — weak symmetry breaking under the framework.
//!
//! Not a figure of the paper, but the canonical "easier" symmetry-breaking
//! task of the literature it builds on: outputs in {0,1}, not all equal.
//! The framework mechanically yields its blackboard characterization —
//! solvable iff `k ≥ 2` (two sources eventually diverge, and the two
//! sides output different bits) — strictly weaker than leader election's
//! `∃ n_i = 1`.

use rsbt_bench::{banner, fmt_p, fmt_sizes, Table};
use rsbt_core::{eventual, probability};
use rsbt_random::Assignment;
use rsbt_sim::Model;
use rsbt_tasks::WeakSymmetryBreaking;

fn main() {
    banner(
        "Weak symmetry breaking: framework-derived characterization",
        "companion task; cf. Fraigniaud-Gelles-Lotker 2021 Section 1.1 and [HKR14]",
    );
    let mut table = Table::new(vec![
        "sizes",
        "k≥2 (conj)",
        "p(1)",
        "p(2)",
        "p(3)",
        "limit",
        "matches",
    ]);
    let mut all_match = true;
    for n in 2..=6usize {
        for alpha in Assignment::enumerate_profiles(n) {
            let sizes = alpha.group_sizes();
            let t_max = 3.min(16 / alpha.k().max(1)).max(1);
            let series =
                probability::exact_series(&Model::Blackboard, &WeakSymmetryBreaking, &alpha, t_max);
            let limit = eventual::lemma_3_2_limit(&series);
            let observed = limit == eventual::LimitClass::One;
            let predicted = alpha.k() >= 2;
            let matches = observed == predicted;
            all_match &= matches;
            let p_at = |t: usize| {
                series
                    .get(t - 1)
                    .map(|p| fmt_p(*p))
                    .unwrap_or_else(|| "-".into())
            };
            table.row(vec![
                fmt_sizes(&sizes),
                predicted.to_string(),
                p_at(1),
                p_at(2),
                p_at(3),
                format!("{limit:?}"),
                matches.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!("framework-derived: blackboard WSB is eventually solvable ⟺ k ≥ 2.");
    println!("all profiles match: {all_match}");
    println!("\ncontrast: leader election needs ∃ n_i = 1 — e.g. sizes [2,2] solve");
    println!("WSB but not LE, exhibiting the strict separation between the tasks.");
}
