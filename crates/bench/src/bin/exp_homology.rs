//! Experiment `homology` — the topology of the paper's complexes,
//! measured through mod-2 Betti numbers.
//!
//! Not a figure of the paper, but the structural backdrop of its Section 3:
//! `R(1)` is an octahedral sphere, `π(O_LE)` decomposes into leader points
//! plus a defeated sphere, and the union `π̃(R(t))` *erases* the
//! symmetry-breaking structure (it is pure with no isolated vertex) — the
//! mechanical content of the paper's "a single facet has a trivial
//! topological structure / the union loses the information" discussion.

use std::process::ExitCode;

use rsbt_bench::{run_experiment, Table};
use rsbt_complex::homology;
use rsbt_core::{consistency, realization_complex};
use rsbt_random::Assignment;
use rsbt_sim::Model;
use rsbt_tasks::{projection, LeaderElection, Task, WeakSymmetryBreaking};

fn betti_str(b: &[usize]) -> String {
    let cells: Vec<String> = b.iter().map(usize::to_string).collect();
    format!("[{}]", cells.join(","))
}

fn main() -> ExitCode {
    run_experiment(
        "homology",
        "Betti numbers of the paper's complexes",
        "structural backdrop of Fraigniaud-Gelles-Lotker 2021, Section 3",
        |eng, rep| {
            let mut table = Table::new(vec!["complex", "n", "t", "facets", "betti (mod 2)"]);

            for n in 2..=4usize {
                let r1 = realization_complex::full(n, 1);
                table.row(vec![
                    "R(t)".into(),
                    n.to_string(),
                    "1".into(),
                    r1.facet_count().to_string(),
                    betti_str(&homology::betti_numbers(&r1)),
                ]);
            }
            let r22 = realization_complex::full(2, 2);
            table.row(vec![
                "R(t)".into(),
                "2".into(),
                "2".into(),
                r22.facet_count().to_string(),
                betti_str(&homology::betti_numbers(&r22)),
            ]);

            for n in 2..=4usize {
                let ole = LeaderElection.output_complex(n);
                table.row(vec![
                    "O_LE".into(),
                    n.to_string(),
                    "-".into(),
                    ole.facet_count().to_string(),
                    betti_str(&homology::betti_numbers(&ole)),
                ]);
                let pi = projection::project_complex(&ole);
                table.row(vec![
                    "π(O_LE)".into(),
                    n.to_string(),
                    "-".into(),
                    pi.facet_count().to_string(),
                    betti_str(&homology::betti_numbers(&pi)),
                ]);
            }

            for n in 2..=4usize {
                let wsb = WeakSymmetryBreaking.output_complex(n);
                table.row(vec![
                    "O_WSB".into(),
                    n.to_string(),
                    "-".into(),
                    wsb.facet_count().to_string(),
                    betti_str(&homology::betti_numbers(&wsb)),
                ]);
            }

            let arena = eng.arena();
            for (label, alpha) in [
                ("π̃(R(t)) shared", Assignment::shared(3)),
                ("π̃(R(t)) private", Assignment::private(3)),
                (
                    "π̃(R(t)) [1,2]",
                    Assignment::from_group_sizes(&[1, 2]).unwrap(),
                ),
            ] {
                for t in 1..=2usize {
                    let u = consistency::pi_tilde_of_support(&Model::Blackboard, &alpha, t, arena);
                    table.row(vec![
                        label.into(),
                        "3".into(),
                        t.to_string(),
                        u.facet_count().to_string(),
                        betti_str(&homology::betti_numbers(&u)),
                    ]);
                }
            }

            let section = rep.section("Betti numbers");
            section.table(table);
            section.note("readings:");
            section.note(" * R(1) is the octahedral (n−1)-sphere: betti [1,0,…,1];");
            section.note(" * π(O_LE) = n isolated leaders + the boundary complex of the");
            section.note("   defeated simplex: betti [n+1, 0, …, 1] for n ≥ 3;");
            section.note(" * the union π̃(R(t)) is PURE and has no isolated vertices even");
            section.note("   when individual π̃(ρ) do — the union destroys exactly the");
            section.note("   structure solvability needs, which is why Definition 3.4 works");
            section.note("   facet by facet.");
        },
    )
}
