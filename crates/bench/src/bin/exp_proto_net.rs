//! Experiment `proto_net` — real multi-process protocol execution.
//!
//! Each node runs as its **own OS process** (this same binary re-spawned
//! in `--net-worker` mode), exchanging length-prefixed messages with the
//! coordinator over loopback TCP. The coordinator distributes the
//! assignment-derived bits, enforces round barriers with per-read
//! timeouts, and collects outputs — then the bin asserts the outcome is
//! bit-identical to the in-simulator backend on the same seed (outputs,
//! rounds, and message/byte counters: `msg_bytes` is the wire length for
//! every ported protocol, so even the byte counters transfer).
//!
//! Worker invocation (spawned internally, listed for debugging):
//! `exp_proto_net --net-worker <ble|euclid> <index> <addr> <n> <k>
//! <timeout_ms>`. Workers rebuild their projected machine from
//! `(protocol, n, k)` alone — the models used here (blackboard, cyclic
//! ports) are deterministic in `n`, so no model state crosses the wire.
//!
//! Extra flags beyond the shared experiment CLI:
//!
//! * `--timeout-ms <n>` — per-read deadline for the coordinator and the
//!   spawned workers (default 30000 ms);
//! * `--kill <node> <round>` — fault-injection smoke: kill worker
//!   `<node>`'s process when the coordinator reaches round `<round>`
//!   (1-based) and assert the run degrades to a partial outcome instead
//!   of failing. Replaces the usual sim-agreement rows.

use std::process::{Command, ExitCode};
use std::time::Duration;

use rsbt_bench::{fmt_sizes, run_experiment_from, Table};
use rsbt_protocols::choreo::{
    Backend, BleChoreo, Choreography, EuclidChoreo, RunJob, SimBackend, SocketBackend,
};
use rsbt_protocols::leader_count;
use rsbt_random::Assignment;
use rsbt_sim::net::run_node;
use rsbt_sim::Model;

const WORKER_FLAG: &str = "--net-worker";
const DEFAULT_TIMEOUT_MS: u64 = 30_000;

/// The per-protocol model reconstruction shared by the coordinator and
/// the workers: both sides must derive the identical model from `n`.
fn model_for(proto: &str, n: usize) -> Model {
    match proto {
        "ble" => Model::Blackboard,
        "euclid" => Model::message_passing_cyclic(n),
        other => panic!("unknown protocol '{other}' (expected ble|euclid)"),
    }
}

fn worker(args: &[String]) -> ExitCode {
    let usage = "usage: --net-worker <ble|euclid> <index> <addr> <n> <k> <timeout_ms>";
    let [proto, index, addr, n, k, timeout_ms] = args else {
        eprintln!("{usage}");
        return ExitCode::from(2);
    };
    let (Ok(index), Ok(addr), Ok(n), Ok(k), Ok(timeout_ms)) = (
        index.parse::<usize>(),
        addr.parse::<std::net::SocketAddr>(),
        n.parse::<usize>(),
        k.parse::<usize>(),
        timeout_ms.parse::<u64>(),
    ) else {
        eprintln!("{usage}");
        return ExitCode::from(2);
    };
    let timeout = Duration::from_millis(timeout_ms);
    let model = model_for(proto, n);
    let result = match proto.as_str() {
        "ble" => {
            let choreo = BleChoreo;
            let projection = choreo.global().project(&model, n).expect("ble projects");
            run_node(
                addr,
                index,
                choreo.node(index, &model, &projection),
                Some(timeout),
            )
            .map(|_| ())
        }
        "euclid" => {
            let choreo = EuclidChoreo { k };
            let projection = choreo.global().project(&model, n).expect("euclid projects");
            run_node(
                addr,
                index,
                choreo.node(index, &model, &projection),
                Some(timeout),
            )
            .map(|_| ())
        }
        other => {
            eprintln!("unknown protocol '{other}'");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("worker {index} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// A socket backend that re-spawns this binary once per node.
fn process_backend(proto: &'static str, n: usize, k: usize, timeout_ms: u64) -> SocketBackend {
    SocketBackend::spawning(Duration::from_millis(timeout_ms), move |index, addr| {
        let exe = std::env::current_exe().expect("own executable path");
        let mut cmd = Command::new(exe);
        cmd.args([
            WORKER_FLAG,
            proto,
            &index.to_string(),
            addr,
            &n.to_string(),
            &k.to_string(),
            &timeout_ms.to_string(),
        ]);
        cmd
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some(WORKER_FLAG) {
        return worker(&args[2..]);
    }

    // Extract this binary's extra flags; the remainder goes to the shared
    // experiment CLI (which rejects anything it does not know).
    let mut kill: Option<(usize, usize)> = None;
    let mut timeout_ms = DEFAULT_TIMEOUT_MS;
    let mut shared: Vec<String> = Vec::new();
    let mut iter = args.into_iter().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--kill" => {
                let parsed = match (iter.next(), iter.next()) {
                    (Some(node), Some(round)) => {
                        node.parse::<usize>().ok().zip(round.parse::<usize>().ok())
                    }
                    _ => None,
                };
                let Some((node, round)) = parsed.filter(|&(_, round)| round >= 1) else {
                    eprintln!("error: --kill needs <node> <round> (round is 1-based)");
                    return ExitCode::from(2);
                };
                kill = Some((node, round));
            }
            "--timeout-ms" => {
                let parsed = iter.next().and_then(|v| v.parse::<u64>().ok());
                let Some(ms) = parsed.filter(|&ms| ms >= 1) else {
                    eprintln!("error: --timeout-ms needs a positive millisecond count");
                    return ExitCode::from(2);
                };
                timeout_ms = ms;
            }
            _ => shared.push(arg),
        }
    }
    if shared.iter().any(|a| a == "--help" || a == "-h") {
        println!("proto_net extras:");
        println!("  --timeout-ms <n>       per-read deadline for the coordinator and the");
        println!("                         spawned workers, in ms (default 30000). Crash");
        println!("                         detection retries a timed-out read 2 more times");
        println!("                         with 10ms..500ms doubling backoff before");
        println!("                         declaring the node crashed.");
        println!("  --kill <node> <round>  kill worker <node> at round <round> (1-based)");
        println!("                         and assert the run degrades to a partial");
        println!("                         outcome; replaces the sim-agreement rows");
        println!();
    }
    run_experiment_from(
        shared.into_iter(),
        "proto_net",
        "Multi-process protocol execution over loopback TCP",
        "Fraigniaud-Gelles-Lotker 2021, Sections 3-4 protocols as real processes",
        |_eng, rep| {
            if let Some((node, round)) = kill {
                let alpha = Assignment::from_group_sizes(&[1, 1, 2]).unwrap();
                assert!(
                    node < alpha.n(),
                    "--kill node {node} out of range for n={}",
                    alpha.n()
                );
                let model = model_for("ble", alpha.n());
                let job = RunJob {
                    model: &model,
                    alpha: &alpha,
                    max_rounds: 128,
                    seed: 0,
                };
                let net = process_backend("ble", alpha.n(), alpha.k(), timeout_ms)
                    .with_kill(node, round)
                    .run(&BleChoreo, &job)
                    .unwrap()
                    .into_run();
                assert!(net.crashed[node], "killed worker must be declared crashed");
                assert!(net.outputs[node].is_none(), "dead node reports no output");
                assert!(net.stats.crashes >= 1, "crash must be counted");
                let live_outputs = net.outputs.iter().filter(|o| o.is_some()).count();
                let mut table = Table::new(vec![
                    "protocol",
                    "sizes",
                    "killed node",
                    "kill round",
                    "completed",
                    "rounds",
                    "crashes",
                    "live outputs",
                ]);
                table.row(vec![
                    "blackboard-le".into(),
                    fmt_sizes(alpha.group_sizes()),
                    node.to_string(),
                    round.to_string(),
                    net.completed.to_string(),
                    net.rounds.to_string(),
                    net.stats.crashes.to_string(),
                    live_outputs.to_string(),
                ]);
                let section = rep.section("mid-run worker kill (fault-tolerant coordinator)");
                section.table(table);
                section.note(format!(
                    "killed worker {node}'s OS process at round {round}: crashes={} and the \
                     coordinator still returned a partial outcome instead of failing",
                    net.stats.crashes
                ));
                return;
            }
            let mut table = Table::new(vec![
                "protocol",
                "sizes",
                "seed",
                "completed",
                "rounds",
                "leaders",
                "posts",
                "sends",
                "max msg B",
                "matches sim",
            ]);

            // Blackboard leader election: n = 4 real processes.
            let alpha = Assignment::from_group_sizes(&[1, 1, 2]).unwrap();
            let model = model_for("ble", alpha.n());
            for seed in 0..3u64 {
                let job = RunJob {
                    model: &model,
                    alpha: &alpha,
                    max_rounds: 128,
                    seed,
                };
                let sim = SimBackend.run(&BleChoreo, &job).unwrap().into_run();
                let net = process_backend("ble", alpha.n(), alpha.k(), timeout_ms)
                    .run(&BleChoreo, &job)
                    .unwrap()
                    .into_run();
                assert!(sim.completed, "seed {seed}: ble must elect");
                assert_eq!(sim.outputs, net.outputs, "seed {seed}: leader must match");
                assert_eq!(sim.rounds, net.rounds, "seed {seed}");
                assert_eq!(sim.stats, net.stats, "seed {seed}");
                table.row(vec![
                    "blackboard-le".into(),
                    fmt_sizes(alpha.group_sizes()),
                    seed.to_string(),
                    net.completed.to_string(),
                    net.rounds.to_string(),
                    leader_count(&net.outputs).to_string(),
                    net.stats.posts.to_string(),
                    net.stats.sends.to_string(),
                    net.stats.max_msg_bytes.to_string(),
                    "true".into(),
                ]);
            }

            // Euclid leader election under message passing: n = 5.
            let alpha = Assignment::from_group_sizes(&[2, 3]).unwrap();
            let model = model_for("euclid", alpha.n());
            for seed in 0..2u64 {
                let job = RunJob {
                    model: &model,
                    alpha: &alpha,
                    max_rounds: 6000,
                    seed,
                };
                let choreo = EuclidChoreo { k: alpha.k() };
                let sim = SimBackend.run(&choreo, &job).unwrap().into_run();
                let net = process_backend("euclid", alpha.n(), alpha.k(), timeout_ms)
                    .run(&choreo, &job)
                    .unwrap()
                    .into_run();
                assert!(sim.completed, "seed {seed}: gcd = 1 euclid must elect");
                assert_eq!(sim.outputs, net.outputs, "seed {seed}: leader must match");
                assert_eq!(sim.rounds, net.rounds, "seed {seed}");
                assert_eq!(sim.stats, net.stats, "seed {seed}");
                table.row(vec![
                    "euclid-le".into(),
                    fmt_sizes(alpha.group_sizes()),
                    seed.to_string(),
                    net.completed.to_string(),
                    net.rounds.to_string(),
                    leader_count(&net.outputs).to_string(),
                    net.stats.posts.to_string(),
                    net.stats.sends.to_string(),
                    net.stats.max_msg_bytes.to_string(),
                    "true".into(),
                ]);
            }

            let section = rep.section("process-per-node runs vs simulator (same seed)");
            section.table(table);
            section.note("every row ran n real OS processes over 127.0.0.1; a row only");
            section.note("prints after in-process asserts proved outputs, rounds, and");
            section.note("message/byte counters bit-identical to the simulator backend.");
        },
    )
}
