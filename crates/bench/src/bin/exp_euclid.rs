//! Experiment `euclid` — the Theorem 4.2 'if'-direction algorithm:
//! Euclid-style leader election over correlated sources.
//!
//! Measures success rate and rounds-to-election across gcd = 1 profiles
//! (random and adversarial ports) and confirms the stall on gcd > 1 with
//! adversarial ports.

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsbt_bench::{fmt_sizes, run_experiment, Table};
use rsbt_protocols::{leader_count, EuclidLeaderElection};
use rsbt_random::Assignment;
use rsbt_sim::runner::{run, RunStats};
use rsbt_sim::{Model, PortNumbering};

fn trial(
    sizes: &[usize],
    adversarial: bool,
    seed: u64,
    cap: usize,
) -> (bool, usize, usize, RunStats) {
    let alpha = Assignment::from_group_sizes(sizes).unwrap();
    let n = alpha.n();
    let k = sizes.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let ports = if adversarial {
        PortNumbering::adversarial(n, alpha.gcd_of_group_sizes() as usize)
    } else {
        PortNumbering::random(n, &mut rng)
    };
    let out = run(
        &Model::MessagePassing(ports),
        &alpha,
        cap,
        || EuclidLeaderElection::new(k),
        &mut rng,
    );
    (
        out.completed,
        leader_count(&out.outputs),
        out.rounds,
        out.stats,
    )
}

fn main() -> ExitCode {
    run_experiment(
        "euclid",
        "Euclid-style leader election (Theorem 4.2, 'if' direction)",
        "Fraigniaud-Gelles-Lotker 2021, Theorem 4.2 proof (Section 4.2)",
        |_eng, rep| {
            const TRIALS: u64 = 100;
            let mut table = Table::new(vec![
                "sizes",
                "gcd",
                "ports",
                "elected",
                "leaders=1",
                "mean rounds",
                "sends/run",
                "max msg B",
            ]);
            for sizes in [
                vec![1usize, 1],
                vec![1, 2],
                vec![2, 3],
                vec![3, 4],
                vec![2, 2, 3],
                vec![2, 3, 4],
                vec![1, 1, 1, 1],
            ] {
                for adversarial in [false, true] {
                    let mut ok = 0u64;
                    let mut single = true;
                    let mut rounds = Vec::new();
                    let mut sends = 0u64;
                    let mut max_msg_bytes = 0usize;
                    for seed in 0..TRIALS {
                        let (done, leaders, r, stats) = trial(&sizes, adversarial, seed, 8000);
                        sends += stats.sends;
                        max_msg_bytes = max_msg_bytes.max(stats.max_msg_bytes);
                        if done {
                            ok += 1;
                            single &= leaders == 1;
                            rounds.push(r);
                        }
                    }
                    let alpha = Assignment::from_group_sizes(&sizes).unwrap();
                    let mean = rounds.iter().sum::<usize>() as f64 / rounds.len().max(1) as f64;
                    table.row(vec![
                        fmt_sizes(&sizes),
                        alpha.gcd_of_group_sizes().to_string(),
                        if adversarial { "adversarial" } else { "random" }.to_string(),
                        format!("{ok}/{TRIALS}"),
                        single.to_string(),
                        format!("{mean:.1}"),
                        format!("{:.1}", sends as f64 / TRIALS as f64),
                        max_msg_bytes.to_string(),
                    ]);
                }
            }
            let section = rep.section("election success and round counts");
            section.table(table);
            section.note("paper: gcd = 1 elects exactly one leader for EVERY numbering.");

            // The stall side: gcd > 1, adversarial ports.
            let mut stall = Table::new(vec!["sizes", "gcd", "elected within cap"]);
            for sizes in [vec![2usize, 2], vec![3, 3], vec![2, 4]] {
                let mut ok = 0u64;
                for seed in 0..20 {
                    let (done, _, _, _) = trial(&sizes, true, seed, 1000);
                    ok += u64::from(done);
                }
                let alpha = Assignment::from_group_sizes(&sizes).unwrap();
                stall.row(vec![
                    fmt_sizes(&sizes),
                    alpha.gcd_of_group_sizes().to_string(),
                    format!("{ok}/20"),
                ]);
            }
            rep.section("gcd > 1 with adversarial ports (expected 0 everywhere)")
                .table(stall);
        },
    )
}
