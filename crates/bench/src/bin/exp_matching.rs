//! Experiment `alg1` — Algorithm 1 (`CreateMatching`): success rate,
//! matching-size invariants (Lemma 4.8), and round-count distribution as
//! a function of the group sizes.

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsbt_bench::{run_experiment, Table};
use rsbt_protocols::matching::{CreateMatching, MatchStatus};
use rsbt_random::Assignment;
use rsbt_sim::runner::{run_nodes, RunStats};
use rsbt_sim::{Model, PortNumbering};

fn run_once(a: usize, b: usize, shared_sources: bool, seed: u64) -> (bool, usize, RunStats) {
    let n = a + b;
    let mut rng = StdRng::seed_from_u64(seed);
    let ports = PortNumbering::random(n, &mut rng);
    let nodes: Vec<CreateMatching> = (0..n)
        .map(|i| {
            if i < a {
                let b_ports = (a..n).map(|t| ports.port_towards(i, t)).collect();
                CreateMatching::new_a(a, b_ports)
            } else {
                CreateMatching::new_b(a)
            }
        })
        .collect();
    let alpha = if shared_sources {
        let mut sources = vec![0usize; a];
        sources.extend(std::iter::repeat_n(1, b));
        Assignment::from_sources(sources).unwrap()
    } else {
        Assignment::private(n)
    };
    let out = run_nodes(&Model::MessagePassing(ports), &alpha, 5000, nodes, &mut rng);
    if !out.completed {
        return (false, out.rounds, out.stats);
    }
    // Lemma 4.8 invariants.
    let matched_a = out.outputs[..a]
        .iter()
        .filter(|o| **o == Some(MatchStatus::Matched))
        .count();
    let matched_b = out.outputs[a..]
        .iter()
        .filter(|o| **o == Some(MatchStatus::Matched))
        .count();
    assert_eq!(matched_a, a, "all of A matched");
    assert_eq!(matched_b, a, "exactly |A| of B matched");
    (true, out.rounds, out.stats)
}

fn main() -> ExitCode {
    run_experiment(
        "matching",
        "Algorithm 1: CreateMatching",
        "Fraigniaud-Gelles-Lotker 2021, Algorithm 1 + Lemma 4.8 (Section 4.2)",
        |_eng, rep| {
            const TRIALS: u64 = 200;
            let mut table = Table::new(vec![
                "(|A|,|B|)",
                "sources",
                "success",
                "mean rounds",
                "min",
                "max",
                "sends/run",
                "max msg B",
            ]);
            for (a, b) in [(1usize, 1usize), (1, 4), (2, 3), (3, 3), (3, 5), (4, 8)] {
                for shared in [true, false] {
                    let mut rounds = Vec::new();
                    let mut ok = 0u64;
                    let mut sends = 0u64;
                    let mut max_msg_bytes = 0usize;
                    for seed in 0..TRIALS {
                        let (success, r, stats) = run_once(a, b, shared, seed * 7 + a as u64);
                        sends += stats.sends;
                        max_msg_bytes = max_msg_bytes.max(stats.max_msg_bytes);
                        if success {
                            ok += 1;
                            rounds.push(r);
                        }
                    }
                    let mean = rounds.iter().sum::<usize>() as f64 / rounds.len().max(1) as f64;
                    table.row(vec![
                        format!("({a},{b})"),
                        if shared { "2 shared" } else { "private" }.to_string(),
                        format!("{ok}/{TRIALS}"),
                        format!("{mean:.1}"),
                        rounds
                            .iter()
                            .min()
                            .map(usize::to_string)
                            .unwrap_or_default(),
                        rounds
                            .iter()
                            .max()
                            .map(usize::to_string)
                            .unwrap_or_default(),
                        format!("{:.1}", sends as f64 / TRIALS as f64),
                        max_msg_bytes.to_string(),
                    ]);
                }
            }
            let section = rep.section("matching trials");
            section.table(table);
            section.note("paper: the matching always completes (Lemma 4.8: every iteration");
            section.note("matches ≥ 1 pair), matching exactly |A| nodes of B; shared group");
            section.note("sources — identical random draws — do not break the procedure.");
        },
    )
}
