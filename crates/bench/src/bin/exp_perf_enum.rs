//! Experiment `perf_enum` — the prefix-sharing enumeration engine versus
//! the pre-engine leaf-by-leaf path, on a fixed `exact_series` grid with
//! `k·t ≥ 16`, plus a before/after micro-benchmark of the interning
//! index's hasher (SipHash vs the vendored Fx).
//!
//! The old path (`probability::exact_series_reference`, kept verbatim for
//! this comparison) pays `t` full rounds of knowledge construction per
//! realization and one facet search per leaf — `Σ_t t·2^{k·t}` rounds for
//! a series. The engine walks one shared execution tree (`Σ_s 2^{k·s}`
//! rounds for the *whole* series), memoizes solvability per consistency
//! partition (≤ Bell(n) facet searches total), and prunes solved
//! subtrees. Probabilities are asserted bit-identical in-process before
//! any timing is reported.

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use rsbt_bench::{fmt_sizes, run_experiment, Table};
use rsbt_core::probability;
use rsbt_random::{Assignment, Realization};
use rsbt_sim::{Execution, KnowledgeArena, KnowledgeId, KnowledgeNode, Model, NeighborInfo};
use rsbt_tasks::LeaderElection;

/// The fixed profile grid: `(group sizes, t_max)`, all with `k·t_max ≥ 16`
/// (the acceptance regime: deep enough that prefix sharing dominates).
const GRID: &[(&[usize], usize)] = &[(&[1, 2], 8), (&[2, 2], 8), (&[1, 3], 8), (&[1, 1, 2], 6)];

fn series_comparison(rep_table: &mut Table) -> f64 {
    let mut min_speedup = f64::INFINITY;
    for &(sizes, t_max) in GRID {
        let alpha = Assignment::from_group_sizes(sizes).unwrap();
        let bits = alpha.k() * t_max;

        let start = Instant::now();
        let old = probability::exact_series_reference(
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            t_max,
            &mut KnowledgeArena::new(),
        );
        let old_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let engine = probability::exact_series(&Model::Blackboard, &LeaderElection, &alpha, t_max);
        let engine_ms = start.elapsed().as_secs_f64() * 1e3;

        let identical = old.len() == engine.len()
            && old
                .iter()
                .zip(&engine)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(
            identical,
            "engine diverged from reference on {sizes:?} t_max={t_max}: {old:?} vs {engine:?}"
        );
        let speedup = old_ms / engine_ms.max(1e-6);
        min_speedup = min_speedup.min(speedup);
        rep_table.row(vec![
            fmt_sizes(sizes),
            alpha.k().to_string(),
            t_max.to_string(),
            bits.to_string(),
            format!("{old_ms:.2}"),
            format!("{engine_ms:.2}"),
            format!("{speedup:.1}"),
            identical.to_string(),
        ]);
    }
    min_speedup
}

/// Times `inserts + lookups` of realistic `KnowledgeNode` keys through a
/// map with the given hasher; returns elapsed milliseconds.
fn time_index<S>(corpus: &[KnowledgeNode], lookup_rounds: usize) -> f64
where
    S: std::hash::BuildHasher + Default,
{
    let start = Instant::now();
    let mut map: std::collections::HashMap<&KnowledgeNode, u32, S> =
        std::collections::HashMap::with_hasher(S::default());
    for (i, node) in corpus.iter().enumerate() {
        map.insert(node, i as u32);
    }
    let mut found = 0u64;
    for _ in 0..lookup_rounds {
        for node in corpus {
            if map.contains_key(node) {
                found += 1;
            }
        }
    }
    black_box(found);
    start.elapsed().as_secs_f64() * 1e3
}

fn interning_bench(table: &mut Table) -> (f64, f64) {
    // A realistic id population: every final-round knowledge value of a
    // k = 2, t = 4 enumeration.
    let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
    let mut arena = KnowledgeArena::new();
    let mut ids: Vec<KnowledgeId> = Vec::new();
    for rho in Realization::enumerate_consistent(&alpha, 4) {
        let exec = Execution::run(&Model::Blackboard, &rho, &mut arena);
        ids.extend_from_slice(exec.knowledge_at(4));
    }
    ids.sort_unstable();
    ids.dedup();
    let corpus: Vec<KnowledgeNode> = (0..20_000usize)
        .map(|i| KnowledgeNode::Round {
            prev: ids[i % ids.len()],
            bit: i % 2 == 1,
            heard: NeighborInfo::Board(vec![ids[i * 7 % ids.len()], ids[i * 13 % ids.len()]]),
        })
        .collect();
    let lookup_rounds = 30;
    let ops = corpus.len() * (lookup_rounds + 1);
    let sip_ms = time_index::<std::collections::hash_map::RandomState>(&corpus, lookup_rounds);
    let fx_ms = time_index::<rsbt_sim::FxBuildHasher>(&corpus, lookup_rounds);
    for (label, ms) in [("SipHash (before)", sip_ms), ("Fx (after)", fx_ms)] {
        table.row(vec![
            label.to_string(),
            ops.to_string(),
            format!("{ms:.2}"),
            format!("{:.0}", ms * 1e6 / ops as f64),
        ]);
    }
    (sip_ms, fx_ms)
}

fn main() -> ExitCode {
    run_experiment(
        "perf_enum",
        "Prefix-sharing enumeration engine vs leaf-by-leaf reference",
        "DESIGN.md section 4.4 (execution tree); Lemma B.1 enumeration",
        |_eng, rep| {
            let mut table = Table::new(vec![
                "sizes",
                "k",
                "t_max",
                "bits",
                "old_ms",
                "engine_ms",
                "speedup",
                "identical",
            ]);
            let min_speedup = series_comparison(&mut table);
            let section = rep.section("exact_series: old path vs engine (blackboard)");
            section.table(table);
            section.note(
                "old path = exact_series_reference: t rounds of interning + one facet search \
                 per leaf, one enumeration per t (sum_t t*2^(kt) rounds per series)",
            );
            section.note(
                "engine = one shared execution-tree traversal per series: one round per tree \
                 node (sum_s 2^(ks)), solvability memoized per consistency partition, solved \
                 subtrees pruned wholesale",
            );
            section.note(format!(
                "probabilities bit-identical on every grid point; minimum speedup {min_speedup:.1}x"
            ));

            let mut hasher_table = Table::new(vec!["hasher", "ops", "ms", "ns_per_op"]);
            let (sip_ms, fx_ms) = interning_bench(&mut hasher_table);
            let section = rep.section("interning index hasher: SipHash vs vendored Fx");
            section.table(hasher_table);
            section.note(format!(
                "KnowledgeNode insert+lookup through HashMap: Fx is {:.1}x the SipHash \
                 throughput on this corpus (the arena index now defaults to Fx)",
                sip_ms / fx_ms.max(1e-6)
            ));
        },
    )
}
