//! Experiment `perf_enum` — three generations of the exact path on a
//! fixed `exact_series` grid with `k·t ≥ 16`: the pre-engine leaf-by-leaf
//! reference, the prefix-sharing execution-tree engine (PR 3), and the
//! quotient DP engine over knowledge-equality states — plus a
//! before/after micro-benchmark of the interning index's hasher (SipHash
//! vs the vendored Fx) and an `exact-dp` sweep past the tree wall.
//!
//! The old path (`probability::exact_series_reference`, kept verbatim for
//! this comparison) pays `t` full rounds of knowledge construction per
//! realization and one facet search per leaf — `Σ_t t·2^{k·t}` rounds for
//! a series. The tree engine walks one shared execution tree (`Σ_s
//! 2^{k·s}` rounds for the *whole* series), memoizes solvability per
//! consistency partition, and prunes solved subtrees. The quotient engine
//! (`rsbt_core::engine_dp`, the production dispatch behind
//! `exact_series`) folds the tree into a DP over equality states —
//! `O(states · 2^k)` per round, flat in `t`. All three series are
//! asserted bit-identical in-process before any timing is reported; the
//! dedicated head-to-head on adversarial-for-pruning points lives in
//! `exp_perf_quotient`.

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use rsbt_bench::{fmt_sizes, run_experiment, RowMode, SweepSpec, Table, TaskSpec};
use rsbt_core::{engine, probability};
use rsbt_random::{Assignment, Realization};
use rsbt_sim::{Execution, KnowledgeArena, KnowledgeId, KnowledgeNode, Model, NeighborInfo};
use rsbt_tasks::LeaderElection;

/// The fixed profile grid: `(group sizes, t_max)`, all with `k·t_max ≥ 16`
/// (the acceptance regime: deep enough that prefix sharing dominates).
const GRID: &[(&[usize], usize)] = &[(&[1, 2], 8), (&[2, 2], 8), (&[1, 3], 8), (&[1, 1, 2], 6)];

fn series_comparison(rep_table: &mut Table) -> (f64, f64) {
    let mut min_speedup = f64::INFINITY;
    let mut min_dp_speedup = f64::INFINITY;
    for &(sizes, t_max) in GRID {
        let alpha = Assignment::from_group_sizes(sizes).unwrap();
        let bits = alpha.k() * t_max;

        let start = Instant::now();
        let old = probability::exact_series_reference(
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            t_max,
            &mut KnowledgeArena::new(),
        );
        let old_ms = start.elapsed().as_secs_f64() * 1e3;

        // The PR 3 tree engine, called directly (the public entry points
        // now dispatch to the quotient engine).
        let start = Instant::now();
        let tree_counts = engine::solved_counts(
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            t_max,
            &mut KnowledgeArena::new(),
        );
        let tree_ms = start.elapsed().as_secs_f64() * 1e3;
        let tree: Vec<f64> = tree_counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 / (1u128 << (alpha.k() * (i + 1))) as f64)
            .collect();

        // The quotient DP engine via the production dispatch.
        let start = Instant::now();
        let dp = probability::exact_series(&Model::Blackboard, &LeaderElection, &alpha, t_max);
        let dp_ms = start.elapsed().as_secs_f64() * 1e3;

        let bitwise = |a: &[f64], b: &[f64]| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        };
        let identical = bitwise(&old, &tree) && bitwise(&old, &dp);
        assert!(
            identical,
            "engines diverged on {sizes:?} t_max={t_max}: ref {old:?} tree {tree:?} dp {dp:?}"
        );
        let speedup = old_ms / tree_ms.max(1e-6);
        let dp_speedup = old_ms / dp_ms.max(1e-6);
        min_speedup = min_speedup.min(speedup);
        min_dp_speedup = min_dp_speedup.min(dp_speedup);
        rep_table.row(vec![
            fmt_sizes(sizes),
            alpha.k().to_string(),
            t_max.to_string(),
            bits.to_string(),
            format!("{old_ms:.2}"),
            format!("{tree_ms:.2}"),
            format!("{dp_ms:.2}"),
            format!("{speedup:.1}"),
            format!("{dp_speedup:.1}"),
            identical.to_string(),
        ]);
    }
    (min_speedup, min_dp_speedup)
}

/// Times `inserts + lookups` of realistic `KnowledgeNode` keys through a
/// map with the given hasher; returns elapsed milliseconds.
fn time_index<S>(corpus: &[KnowledgeNode], lookup_rounds: usize) -> f64
where
    S: std::hash::BuildHasher + Default,
{
    let start = Instant::now();
    // The whole point of this experiment is comparing hashers, so the
    // std map with an explicit `S` is deliberate: order never leaves
    // this function, only elapsed time does.
    let mut map: std::collections::HashMap<&KnowledgeNode, u32, S> = // rsbt-analyze: allow(RSBT-L001)
        std::collections::HashMap::with_hasher(S::default()); // rsbt-analyze: allow(RSBT-L001)
    for (i, node) in corpus.iter().enumerate() {
        map.insert(node, i as u32);
    }
    let mut found = 0u64;
    for _ in 0..lookup_rounds {
        for node in corpus {
            if map.contains_key(node) {
                found += 1;
            }
        }
    }
    black_box(found);
    start.elapsed().as_secs_f64() * 1e3
}

fn interning_bench(table: &mut Table) -> (f64, f64) {
    // A realistic id population: every final-round knowledge value of a
    // k = 2, t = 4 enumeration.
    let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
    let mut arena = KnowledgeArena::new();
    let mut ids: Vec<KnowledgeId> = Vec::new();
    for rho in Realization::enumerate_consistent(&alpha, 4) {
        let exec = Execution::run(&Model::Blackboard, &rho, &mut arena);
        ids.extend_from_slice(exec.knowledge_at(4));
    }
    ids.sort_unstable();
    ids.dedup();
    let corpus: Vec<KnowledgeNode> = (0..20_000usize)
        .map(|i| KnowledgeNode::Round {
            prev: ids[i % ids.len()],
            bit: i % 2 == 1,
            heard: NeighborInfo::Board(vec![ids[i * 7 % ids.len()], ids[i * 13 % ids.len()]]),
        })
        .collect();
    let lookup_rounds = 30;
    let ops = corpus.len() * (lookup_rounds + 1);
    let sip_ms = time_index::<std::collections::hash_map::RandomState>(&corpus, lookup_rounds);
    let fx_ms = time_index::<rsbt_sim::FxBuildHasher>(&corpus, lookup_rounds);
    for (label, ms) in [("SipHash (before)", sip_ms), ("Fx (after)", fx_ms)] {
        table.row(vec![
            label.to_string(),
            ops.to_string(),
            format!("{ms:.2}"),
            format!("{:.0}", ms * 1e6 / ops as f64),
        ]);
    }
    (sip_ms, fx_ms)
}

fn main() -> ExitCode {
    run_experiment(
        "perf_enum",
        "Prefix-sharing enumeration engine vs leaf-by-leaf reference",
        "DESIGN.md section 4.4 (execution tree); Lemma B.1 enumeration",
        |eng, rep| {
            let mut table = Table::new(vec![
                "sizes",
                "k",
                "t_max",
                "bits",
                "old_ms",
                "tree_ms",
                "dp_ms",
                "speedup",
                "dp_speedup",
                "identical",
            ]);
            let (min_speedup, min_dp_speedup) = series_comparison(&mut table);
            let section = rep.section("exact_series: reference vs tree engine vs quotient DP");
            section.table(table);
            section.note(
                "old path = exact_series_reference: t rounds of interning + one facet search \
                 per leaf, one enumeration per t (sum_t t*2^(kt) rounds per series)",
            );
            section.note(
                "tree = one shared execution-tree traversal per series: one round per tree \
                 node (sum_s 2^(ks)), solvability memoized per consistency partition, solved \
                 subtrees pruned wholesale; dp = the quotient engine over knowledge-equality \
                 states (production dispatch), O(states*2^k) per round, flat in t",
            );
            section.note(format!(
                "probabilities bit-identical across all three on every grid point; minimum \
                 speedup {min_speedup:.1}x (tree vs old), {min_dp_speedup:.1}x (dp vs old)"
            ));

            // Past the tree wall: exact-dp rows that no tree walk could
            // have produced (k*t up to 96 >> TREE_EXACT_BITS = 30), now
            // routine — and committed through the v2 schema's exact-dp
            // mode tag.
            let spec = SweepSpec::new()
                .task(TaskSpec::fixed(LeaderElection))
                .nodes(3..=4)
                .t_cap(48)
                .bit_budget(126)
                .filter(|alpha| alpha.k() == 2);
            let rows = eng.sweep(&spec);
            assert!(!rows.is_empty());
            assert!(
                rows.iter().all(|r| r.mode == RowMode::ExactDp
                    && r.k * r.series.len() > probability::TREE_EXACT_BITS),
                "beyond-the-wall rows must carry the exact-dp tag"
            );
            assert!(
                rows.iter().all(|r| r.is_monotone()),
                "exact series must be monotone"
            );
            let section = rep.section("beyond the tree wall: exact-dp series to k*t = 96");
            section.sweep("quotient-engine exact series (two-source profiles)", rows);
            section.note(format!(
                "every row has k*t > TREE_EXACT_BITS = {}: exact integer-ratio data in a \
                 regime the repository previously covered only by Monte-Carlo estimation \
                 (mode exact-dp; the u128 dyadic budget runs to k*t <= 126)",
                probability::TREE_EXACT_BITS
            ));

            let mut hasher_table = Table::new(vec!["hasher", "ops", "ms", "ns_per_op"]);
            let (sip_ms, fx_ms) = interning_bench(&mut hasher_table);
            let section = rep.section("interning index hasher: SipHash vs vendored Fx");
            section.table(hasher_table);
            section.note(format!(
                "KnowledgeNode insert+lookup through HashMap: Fx is {:.1}x the SipHash \
                 throughput on this corpus (the arena index now defaults to Fx)",
                sip_ms / fx_ms.max(1e-6)
            ));
        },
    )
}
