//! Experiment `ssh` — the paper's Section 1 motivation: duplicated
//! randomness in the wild (Mat15: >250k devices sharing SSH keys;
//! KV19: 1 in 172 RSA certificates sharing a factor).
//!
//! We synthesize a population of devices whose randomness sources are
//! duplicated at a configurable rate (the substitution for the paper's
//! internet-scan data — same code path: nodes wired to shared sources)
//! and measure how duplication degrades blackboard leader election.

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsbt_bench::{fmt_p, run_experiment, Table};
use rsbt_core::{bounds, eventual};
use rsbt_protocols::{leader_count, BlackboardLeaderElection};
use rsbt_random::Assignment;
use rsbt_sim::runner::run;
use rsbt_sim::Model;

/// Samples a device population: each of `n` devices draws a "key" from a
/// pool of `pool` sources; devices drawing the same key share randomness.
fn sample_population(n: usize, pool: usize, rng: &mut StdRng) -> Assignment {
    let sources: Vec<usize> = (0..n).map(|_| rng.gen_range(0..pool)).collect();
    Assignment::from_sources(sources).expect("n ≥ 1")
}

fn main() -> ExitCode {
    run_experiment(
        "correlated_keys",
        "Correlated-keys workload: duplicated randomness vs leader election",
        "Fraigniaud-Gelles-Lotker 2021, Section 1 motivation ([Mat15], [KV19])",
        |_eng, rep| {
            const TRIALS: u64 = 200;
            let n = 6;
            let mut table = Table::new(vec![
                "pool size",
                "dup pressure",
                "Pr[solvable] (Thm 4.1)",
                "elected (protocol)",
                "mean rounds",
            ]);
            let mut rng = StdRng::seed_from_u64(7);
            for pool in [1usize, 2, 3, 6, 12, 1000] {
                let mut solvable = 0u64;
                let mut elected = 0u64;
                let mut rounds = Vec::new();
                for _ in 0..TRIALS {
                    let alpha = sample_population(n, pool, &mut rng);
                    if eventual::blackboard_eventually_solvable(&alpha) {
                        solvable += 1;
                        let out = run(
                            &Model::Blackboard,
                            &alpha,
                            256,
                            BlackboardLeaderElection::new,
                            &mut rng,
                        );
                        if out.completed && leader_count(&out.outputs) == 1 {
                            elected += 1;
                            rounds.push(out.rounds);
                        }
                    }
                }
                let mean = rounds.iter().sum::<usize>() as f64 / rounds.len().max(1) as f64;
                table.row(vec![
                    pool.to_string(),
                    format!("{:.2} dev/key", n as f64 / pool as f64),
                    fmt_p(solvable as f64 / TRIALS as f64),
                    format!("{elected}/{solvable}"),
                    format!("{mean:.1}"),
                ]);
            }
            let section = rep.section("population sweep");
            section.table(table);
            section.note("reading: with a tiny key pool (heavy duplication, the [Mat15] regime)");
            section.note("configurations rarely contain a singleton source, so election is");
            section.note("often impossible; as the pool grows the system approaches private");
            section.note("randomness and election always succeeds.");

            // The closed-form view for one representative profile.
            let closed = rep
                .section("closed forms for sizes [1,2,2] (one unique key, two duplicated pairs)");
            for t in [1usize, 2, 4, 8] {
                closed.note(format!(
                    "  t={t}: exact p(t) = {}  bound 1-(k-1)/2^t = {}",
                    fmt_p(bounds::exact_blackboard_le_probability(&[1, 2, 2], t)),
                    fmt_p(bounds::theorem_4_1_lower_bound(3, t)),
                ));
            }
        },
    )
}
