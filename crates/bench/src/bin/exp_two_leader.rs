//! Experiment `2le` — the paper's Section 1.2 teaser: characterize
//! 2-leader election with the framework.
//!
//! For each group-size profile we compute exact `p(t)` series for the
//! exactly-2-leaders task and compare with the natural conjecture derived
//! from the framework: in the blackboard model, 2-LE is eventually
//! solvable iff the sizes admit a sub-multiset summing to 2 that can be
//! isolated — i.e. there is a source with `n_i = 2`, or two sources with
//! `n_i = n_j = 1`.

use std::process::ExitCode;

use rsbt_bench::{run_experiment, SweepSpec, TaskSpec};
use rsbt_random::Assignment;
use rsbt_tasks::KLeaderElection;

/// Framework-derived blackboard condition for exactly-2 leaders: some
/// union of groups of total size 2 must be separable, and separability of
/// groups is automatic (distinct sources eventually diverge), so the
/// condition is: ∃ i: n_i = 2, or ∃ i ≠ j: n_i = n_j = 1.
fn conjecture_blackboard_2le(alpha: &Assignment) -> bool {
    let sizes = alpha.group_sizes();
    let singletons = sizes.iter().filter(|&&s| s == 1).count();
    sizes.contains(&2) || singletons >= 2
}

fn main() -> ExitCode {
    run_experiment(
        "two_leader",
        "2-leader election characterization (Section 1.2 teaser)",
        "Fraigniaud-Gelles-Lotker 2021, Section 1.2",
        |eng, rep| {
            let spec = SweepSpec::new()
                .task(TaskSpec::fixed(KLeaderElection::new(2)))
                .nodes(2..=6)
                .t_cap(3)
                .bit_budget(16)
                .predicate(conjecture_blackboard_2le);
            let rows = eng.sweep(&spec);
            let all_match = rows.iter().all(|r| r.matches == Some(true));
            let section = rep.section("blackboard 2-LE vs the framework conjecture");
            section.sweep("2-leader election", rows);
            section.note("framework-derived characterization (blackboard 2-LE):");
            section.note("  solvable ⟺ ∃ n_i = 2, or at least two singleton sources.");
            section.note(format!("all profiles match the conjecture: {all_match}"));
            section.note("");
            section.note("The paper invites the reader to derive this directly and compare —");
            section.note("here the framework produces it mechanically from exact p(t) series.");
        },
    )
}
