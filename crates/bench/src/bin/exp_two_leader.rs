//! Experiment `2le` — the paper's Section 1.2 teaser: characterize
//! 2-leader election with the framework.
//!
//! For each group-size profile we compute exact `p(t)` series for the
//! exactly-2-leaders task and compare with the natural conjecture derived
//! from the framework: in the blackboard model, 2-LE is eventually
//! solvable iff the sizes admit a sub-multiset summing to 2 that can be
//! isolated — i.e. there is a source with `n_i = 2`, or two sources with
//! `n_i = n_j = 1`.

use rsbt_bench::{banner, fmt_p, fmt_sizes, Table};
use rsbt_core::{eventual, probability};
use rsbt_random::Assignment;
use rsbt_sim::Model;
use rsbt_tasks::KLeaderElection;

/// Framework-derived blackboard condition for exactly-2 leaders: some
/// union of groups of total size 2 must be separable, and separability of
/// groups is automatic (distinct sources eventually diverge), so the
/// condition is: ∃ i: n_i = 2, or ∃ i ≠ j: n_i = n_j = 1.
fn conjecture_blackboard_2le(sizes: &[usize]) -> bool {
    let singletons = sizes.iter().filter(|&&s| s == 1).count();
    sizes.contains(&2) || singletons >= 2
}

fn main() {
    banner(
        "2-leader election characterization (Section 1.2 teaser)",
        "Fraigniaud-Gelles-Lotker 2021, Section 1.2",
    );
    let task = KLeaderElection::new(2);
    let mut table = Table::new(vec![
        "sizes",
        "conjecture",
        "p(1)",
        "p(2)",
        "p(3)",
        "limit",
        "matches",
    ]);
    let mut all_match = true;
    for n in 2..=6usize {
        for alpha in Assignment::enumerate_profiles(n) {
            let sizes = alpha.group_sizes();
            let t_max = 3.min(16 / alpha.k().max(1)).max(1);
            let series = probability::exact_series(&Model::Blackboard, &task, &alpha, t_max);
            let limit = eventual::lemma_3_2_limit(&series);
            let observed = limit == eventual::LimitClass::One;
            let predicted = conjecture_blackboard_2le(&sizes);
            let matches = observed == predicted;
            all_match &= matches;
            let p_at = |t: usize| {
                series
                    .get(t - 1)
                    .map(|p| fmt_p(*p))
                    .unwrap_or_else(|| "-".into())
            };
            table.row(vec![
                fmt_sizes(&sizes),
                predicted.to_string(),
                p_at(1),
                p_at(2),
                p_at(3),
                format!("{limit:?}"),
                matches.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!("framework-derived characterization (blackboard 2-LE):");
    println!("  solvable ⟺ ∃ n_i = 2, or at least two singleton sources.");
    println!("all profiles match the conjecture: {all_match}");
    println!("\nThe paper invites the reader to derive this directly and compare —");
    println!("here the framework produces it mechanically from exact p(t) series.");
}
