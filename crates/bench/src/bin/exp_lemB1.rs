//! Experiment `lemB1` — Lemma B.1: for a given time and configuration,
//! every realization has probability either 0 (α-inconsistent) or exactly
//! `2^{−t·k}` — all positive-probability global states are equiprobable.

use std::process::ExitCode;

use rsbt_bench::{fmt_sizes, run_experiment, Table};
use rsbt_random::{Assignment, Realization};

fn main() -> ExitCode {
    run_experiment(
        "lemB1",
        "Lemma B.1: equiprobability of positive-probability realizations",
        "Fraigniaud-Gelles-Lotker 2021, Lemma B.1 (Appendix B)",
        |_eng, rep| {
            let mut table = Table::new(vec![
                "sizes",
                "t",
                "realizations",
                "positive",
                "each =2^-tk",
                "sum",
            ]);
            for sizes in [
                vec![1usize],
                vec![2],
                vec![1, 1],
                vec![2, 1],
                vec![2, 2],
                vec![1, 1, 1],
            ] {
                let alpha = Assignment::from_group_sizes(&sizes).unwrap();
                let n = alpha.n();
                for t in 1..=2usize {
                    if n * t > 12 {
                        continue;
                    }
                    let expected = 0.5f64.powi((t * alpha.k()) as i32);
                    let mut positive = 0usize;
                    let mut total = 0usize;
                    let mut sum = 0.0;
                    let mut all_expected = true;
                    for rho in Realization::enumerate_all(n, t) {
                        let p = rho.probability(&alpha);
                        total += 1;
                        sum += p;
                        if p > 0.0 {
                            positive += 1;
                            all_expected &= (p - expected).abs() < 1e-15;
                        }
                    }
                    table.row(vec![
                        fmt_sizes(&sizes),
                        t.to_string(),
                        total.to_string(),
                        positive.to_string(),
                        all_expected.to_string(),
                        format!("{sum:.6}"),
                    ]);
                }
            }
            let section = rep.section("equiprobability over R(t)");
            section.table(table);
            section
                .note("paper: `positive` = 2^(t·k); every positive probability equals 2^(−t·k);");
            section.note("probabilities over R(t) sum to 1.");
        },
    )
}
