//! Experiment `faults` — deterministic fault injection across the
//! Monte-Carlo estimators:
//!
//! 1. **rate-0 identity** — a zero-rate [`FaultSpec`] routed through the
//!    faulted bit-sliced kernel is asserted bit-identical to the
//!    fault-free kernel (point estimates and whole series, across thread
//!    counts): attaching the fault dimension costs nothing when it is
//!    inactive, structurally (no fault RNG is even constructed);
//! 2. **blackboard refinement** — under the blackboard model, silence is
//!    observable (the board shortens), so per-sample the faulted
//!    consistency partition refines the fault-free one and — with common
//!    random numbers, which the sweep's fault axis guarantees — every
//!    faulted series dominates its fault-free row pointwise. Asserted
//!    exactly, not statistically;
//! 3. **degradation curves** — LE and WSB series under a
//!    crash × omission grid for blackboard and cyclic-port models, every
//!    row with Wilson intervals, emitted as fault-tagged sweep rows
//!    (`crash`/`omission` fields) in the JSON report.
//!
//! Message passing carries no dominance assert: a hole compares equal to
//! a hole, so two nodes silenced together can look *more* alike than in
//! the fault-free run — faults may coarsen the partition (DESIGN.md
//! section 4.9).

use std::process::ExitCode;

use rsbt_bench::{
    fmt_sizes, run_experiment, McSweep, ModelSpec, RowMode, SweepRow, SweepSpec, Table, TaskSpec,
};
use rsbt_core::probability;
use rsbt_random::Assignment;
use rsbt_sim::{FaultSpec, Model};
use rsbt_tasks::{LeaderElection, Task, WeakSymmetryBreaking};

const SAMPLES: usize = 4_096;
const SEED: u64 = 0x5253_4254;

/// The committed crash × omission grid (per-round rates). The `(0, 0)`
/// point rides along to witness the rate-0 identity inside the sweep
/// itself.
fn fault_grid() -> Vec<(f64, f64)> {
    vec![
        (0.0, 0.0),
        (0.0, 0.1),
        (0.0, 0.3),
        (0.1, 0.0),
        (0.3, 0.0),
        (0.15, 0.15),
    ]
}

/// LE and WSB at `n = 6`, two-source profiles, `t ≤ 16`, every row
/// estimated (bit budget 1 forces the MC kernel) so the fault rows share
/// source draws with their fault-free base row.
fn degradation_spec(model: ModelSpec) -> SweepSpec {
    SweepSpec::new()
        .model(model)
        .task(TaskSpec::fixed(LeaderElection))
        .task(TaskSpec::fixed(WeakSymmetryBreaking))
        .nodes(6..=6)
        .filter(|alpha| alpha.k() == 2)
        .t_cap(16)
        .bit_budget(1)
        .mc(McSweep {
            samples: SAMPLES,
            seed: SEED,
        })
        .faults(fault_grid())
}

/// Rows per `(task, α)` group: the fault-free base followed by its fault
/// grid, in expansion order.
fn grouped(rows: &[SweepRow]) -> Vec<&[SweepRow]> {
    rows.chunks(1 + fault_grid().len()).collect()
}

fn rate_zero_identity(threads: usize, table: &mut Table) {
    let none = FaultSpec::none();
    for (task, sizes, t) in [
        (
            Box::new(LeaderElection) as Box<dyn Task + Send + Sync>,
            vec![1usize, 5],
            16usize,
        ),
        (Box::new(WeakSymmetryBreaking), vec![3, 3], 16),
    ] {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        for model in [Model::Blackboard, Model::message_passing_cyclic(alpha.n())] {
            let point = probability::monte_carlo_bitsliced(
                &model,
                task.as_ref(),
                &alpha,
                t,
                SAMPLES,
                SEED,
                threads,
            );
            let series = probability::monte_carlo_bitsliced_series(
                &model,
                task.as_ref(),
                &alpha,
                t,
                SAMPLES,
                SEED,
                threads,
            );
            for faulted_threads in [1usize, threads] {
                let faulted_point = probability::monte_carlo_bitsliced_faulted(
                    &model,
                    task.as_ref(),
                    &alpha,
                    t,
                    SAMPLES,
                    SEED,
                    faulted_threads,
                    &none,
                );
                assert_eq!(
                    faulted_point,
                    point,
                    "{} {sizes:?} {model}: rate-0 point estimate must be bit-identical \
                     (threads={faulted_threads})",
                    task.name()
                );
                let faulted_series = probability::monte_carlo_bitsliced_series_faulted(
                    &model,
                    task.as_ref(),
                    &alpha,
                    t,
                    SAMPLES,
                    SEED,
                    faulted_threads,
                    &none,
                );
                assert_eq!(
                    faulted_series,
                    series,
                    "{} {sizes:?} {model}: rate-0 series must be bit-identical \
                     (threads={faulted_threads})",
                    task.name()
                );
            }
            table.row(vec![
                task.name().into_owned(),
                fmt_sizes(&sizes),
                model.to_string(),
                t.to_string(),
                format!("{}/{}", point.solved, point.samples),
                "true".into(),
            ]);
        }
    }
}

fn check_rows(model_label: &str, rows: &[SweepRow], assert_dominance: bool) {
    for group in grouped(rows) {
        let base = &group[0];
        assert!(base.crash.is_none(), "groups start at the fault-free row");
        assert_eq!(base.mode, RowMode::Mc, "every row here is estimated");
        for row in group {
            assert!(
                row.is_monotone(),
                "{model_label} {} {:?} ({:?}, {:?}): faulted series must stay \
                 monotone in t (partition refinement survives faults)",
                row.task,
                row.sizes,
                row.crash,
                row.omission
            );
        }
        let zero = &group[1];
        assert_eq!(
            (zero.crash, zero.omission),
            (Some(0.0), Some(0.0)),
            "grid leads with the (0, 0) point"
        );
        assert_eq!(
            zero.series, base.series,
            "{model_label} {} {:?}: the (0, 0) fault row must reproduce the \
             fault-free estimate bit for bit",
            base.task, base.sizes
        );
        if assert_dominance {
            for row in &group[1..] {
                for (t, (&faulted, &free)) in row.series.iter().zip(&base.series).enumerate() {
                    assert!(
                        faulted >= free,
                        "{model_label} {} {:?} ({:?}, {:?}) t={}: blackboard silence \
                         only refines, so the faulted estimate must dominate \
                         ({faulted} < {free})",
                        row.task,
                        row.sizes,
                        row.crash,
                        row.omission,
                        t + 1
                    );
                }
            }
        }
    }
}

fn main() -> ExitCode {
    run_experiment(
        "faults",
        "Deterministic fault injection: rate-0 identity, blackboard dominance, and crash/omission degradation grids",
        "DESIGN.md section 4.9 (fault semantics); Fraigniaud-Gelles-Lotker 2021 model under send-omission and crash faults",
        |eng, rep| {
            let threads = eng.threads();

            let mut table = Table::new(vec![
                "task",
                "sizes",
                "model",
                "t",
                "solved/samples",
                "bit_identical",
            ]);
            rate_zero_identity(threads, &mut table);
            let section = rep.section("rate-0 fault spec vs the fault-free kernels");
            section.table(table);
            section.note(format!(
                "FaultSpec::none() through the faulted bit-sliced kernel is asserted \
                 bit-identical to monte_carlo_bitsliced (points and series, threads 1 \
                 and {threads}): at rate 0 no fault RNG is constructed, so the \
                 identity is structural, not numerical"
            ));

            for (mspec, label, dominance) in [
                (ModelSpec::blackboard(), "blackboard", true),
                (ModelSpec::cyclic_ports(), "cyclic ports", false),
            ] {
                let rows = eng.sweep(&degradation_spec(mspec));
                assert!(!rows.is_empty());
                check_rows(label, &rows, dominance);
                let section = rep.section(format!(
                    "degradation under crash/omission faults: {label}, n = 6, t <= 16"
                ));
                section.sweep(format!("fault grid at n = 6 ({label})"), rows);
                if dominance {
                    section.note(
                        "silence is observable on the blackboard (the board shortens), so \
                         per-sample the faulted partition refines the fault-free one; with \
                         common random numbers across the grid the faulted series is \
                         asserted to dominate its base row pointwise - faults only help \
                         these tasks under full-information sharing",
                    );
                } else {
                    section.note(
                        "no dominance assert here: a port slot holding a hole compares \
                         equal to another hole, so jointly-silenced neighbors can look \
                         more alike than in the fault-free run and the partition may \
                         coarsen - message passing genuinely degrades",
                    );
                }
                section.note(format!(
                    "{} samples per row, Wilson 95% intervals in ci_lo/ci_hi; fault rows \
                     carry crash/omission rates in the JSON schema",
                    SAMPLES
                ));
            }
        },
    )
}
