//! Experiment `fig4` — Figure 4 / Lemma 3.5: the relations between
//! `P(t)`, `R(t)`, `O` and their projections.
//!
//! Mechanically verifies, on every enumerable instance:
//!
//! 1. `h : P(t) → R(t)` is a name-preserving simplicial map inducing a
//!    bijection on facets (Section 3.3);
//! 2. the three solvability notions — Definition 3.1 on `σ = h⁻¹(ρ)`,
//!    Definition 3.4 on `π̃(ρ)`, and the fast combinatorial criterion —
//!    agree on every facet (Lemma 3.5).

use std::process::ExitCode;

use rsbt_bench::{run_experiment, Table};
use rsbt_core::output_cache::OutputComplexCache;
use rsbt_core::{iso_h, solvability};
use rsbt_random::Realization;
use rsbt_sim::{Model, PortNumbering};
use rsbt_tasks::{KLeaderElection, LeaderElection};

fn main() -> ExitCode {
    run_experiment(
        "fig4_lemma35",
        "Figure 4 / Lemma 3.5: h-isomorphism and solvability equivalence",
        "Fraigniaud-Gelles-Lotker 2021, Figure 4, Lemma 3.5 (Section 3)",
        |eng, rep| {
            let cases: Vec<(Model, usize, usize)> = vec![
                (Model::Blackboard, 2, 2),
                (Model::Blackboard, 2, 3),
                (Model::Blackboard, 3, 1),
                (Model::Blackboard, 3, 2),
                (Model::message_passing_cyclic(3), 3, 2),
                (
                    Model::MessagePassing(PortNumbering::adversarial(4, 2)),
                    4,
                    1,
                ),
            ];
            let mut t1 = Table::new(vec!["model", "n", "t", "facets checked", "h bijective"]);
            for (model, n, t) in &cases {
                let checked = iso_h::verify_facet_isomorphism(model, *n, *t);
                t1.row(vec![
                    model.to_string(),
                    n.to_string(),
                    t.to_string(),
                    checked.to_string(),
                    "yes".to_string(),
                ]);
            }
            rep.section("h : P(t) → R(t) facet isomorphism").table(t1);

            let mut t2 = Table::new(vec![
                "model",
                "task",
                "n",
                "t",
                "realizations",
                "def3.1=def3.4=fast",
            ]);
            let le = LeaderElection;
            let two = KLeaderElection::new(2);
            // Take-or-build output complexes once per (task, n): these
            // loops evaluate thousands of realizations per pair.
            let mut cache = OutputComplexCache::new();
            let arena = eng.arena();
            for (model, n, t) in &cases {
                let mut agree = true;
                let mut count = 0usize;
                for rho in Realization::enumerate_all(*n, *t) {
                    let fast = solvability::solves(model, &rho, &le, arena);
                    let proj = solvability::solves_via_projection_cached(
                        model, &rho, &le, arena, &mut cache,
                    );
                    let d31 = solvability::solves_via_definition_3_1_cached(
                        model, &rho, &le, arena, &mut cache,
                    );
                    agree &= fast == proj && fast == d31;
                    count += 1;
                }
                t2.row(vec![
                    model.to_string(),
                    "LE".into(),
                    n.to_string(),
                    t.to_string(),
                    count.to_string(),
                    agree.to_string(),
                ]);
                if *n >= 2 {
                    let mut agree2 = true;
                    let mut count2 = 0usize;
                    for rho in Realization::enumerate_all(*n, *t) {
                        let fast = solvability::solves(model, &rho, &two, arena);
                        let proj = solvability::solves_via_projection_cached(
                            model, &rho, &two, arena, &mut cache,
                        );
                        agree2 &= fast == proj;
                        count2 += 1;
                    }
                    t2.row(vec![
                        model.to_string(),
                        "2-LE".into(),
                        n.to_string(),
                        t.to_string(),
                        count2.to_string(),
                        agree2.to_string(),
                    ]);
                }
            }
            let section = rep.section("Lemma 3.5 solvability equivalence");
            section.table(t2);
            section.note("paper: Lemma 3.5 states the equivalence; every row must read `true`.");
        },
    )
}
