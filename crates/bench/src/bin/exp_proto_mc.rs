//! Experiment `proto_mc` — protocol-level Monte-Carlo estimation through
//! the choreography estimator backend.
//!
//! Where the solvability sweeps estimate what the knowledge structure
//! *admits*, this bin estimates what the executable protocols *do*:
//! cumulative completion-by-round series with Wilson intervals for every
//! ported blackboard election, plus per-run message/byte costs including
//! the Euclid election under message passing.
//!
//! In-process acceptance gates (a green run certifies all three):
//!
//! * **thread invariance** — the estimator is a pure function of the
//!   job: one worker and the CLI's worker count produce bit-identical
//!   rows (per-sample `StreamRng` streams are keyed by `(seed, sample)`,
//!   never by the executing thread);
//! * **exact bracketing** — the equivalence + cross-validation suites
//!   prove a projected election completes by round `t + 1` iff the task
//!   is solvable at time `t`; here the *estimated* completion
//!   probability must bracket `probability::exact` within its Wilson
//!   interval at every exact-reachable point;
//! * **schema** — with `--json`, the emitted rows are validated against
//!   `rsbt-bench-report/v2` before writing (`Report::write_json` panics
//!   on violation).

use std::process::ExitCode;

use rsbt_bench::{counters_table, run_experiment, ProtoMc, ProtoMcPoint};
use rsbt_protocols::choreo::{BleChoreo, DeputyChoreo, EuclidChoreo, KLeaderChoreo, WsbChoreo};
use rsbt_random::Assignment;
use rsbt_sim::Model;
use rsbt_tasks::LeaderElection;

const PROFILES: [&[usize]; 4] = [&[1, 1], &[1, 2], &[1, 1, 2], &[2, 2]];

/// Wilson score interval on `successes / samples` at `z` standard
/// deviations.
fn wilson(successes: u64, samples: u64, z: f64) -> (f64, f64) {
    let n = samples as f64;
    let p = successes as f64 / n;
    let denom = 1.0 + z * z / n;
    let center = (p + z * z / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z * z / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

fn main() -> ExitCode {
    run_experiment(
        "proto_mc",
        "Protocol-level Monte-Carlo (choreography estimator backend)",
        "Fraigniaud-Gelles-Lotker 2021, Sections 3-4 protocols as executables",
        |eng, rep| {
            let spec = ProtoMc {
                samples: 4000,
                seed: 0x5EED_B0A2D,
                max_rounds: 12,
                threads: eng.threads(),
            };

            // Gate 1: thread invariance, asserted on a real sweep point.
            let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
            let serial = ProtoMc { threads: 1, ..spec }.estimate(
                &BleChoreo,
                "blackboard",
                &Model::Blackboard,
                &alpha,
            );
            let threaded = spec.estimate(&BleChoreo, "blackboard", &Model::Blackboard, &alpha);
            assert_eq!(
                serial.row, threaded.row,
                "protocol-MC rows must be thread-count invariant"
            );

            // Gate 2: the estimate brackets the exact solvability
            // probability (round r = t + 1 completion ≡ time-t
            // solvability, proven pointwise by tests/cross_validation.rs).
            // z = 4 keeps the multi-point gate deterministic-green, the
            // same convention as exp_perf_mc's agreement grid.
            for t in 1..=3usize {
                let exact = eng.exact(&Model::Blackboard, &LeaderElection, &alpha, t);
                let (lo, hi) = wilson(
                    threaded.estimate.completed_by_round[t],
                    threaded.estimate.samples,
                    4.0,
                );
                assert!(
                    lo <= exact && exact <= hi,
                    "t={t}: exact {exact} outside z=4 Wilson [{lo}, {hi}]"
                );
            }

            // The sweep proper: every ported blackboard election over a
            // profile grid spanning solvable (min group 1) and
            // symmetric-forever (gcd 2) assignments.
            let mut points: Vec<ProtoMcPoint> = Vec::new();
            for sizes in PROFILES {
                let alpha = Assignment::from_group_sizes(sizes).unwrap();
                let bb = Model::Blackboard;
                points.push(spec.estimate(&BleChoreo, "blackboard", &bb, &alpha));
                points.push(spec.estimate(&WsbChoreo, "blackboard", &bb, &alpha));
                points.push(spec.estimate(&KLeaderChoreo { k: 2 }, "blackboard", &bb, &alpha));
                points.push(spec.estimate(&DeputyChoreo, "blackboard", &bb, &alpha));
            }
            for p in &points {
                assert!(p.row.is_monotone(), "cumulative series must be monotone");
            }
            let section = rep.section("blackboard elections: completion by round");
            section.sweep("proto-mc", points.iter().map(|p| p.row.clone()).collect());
            section.note("series[r-1] = Pr[protocol decided by round r], estimated on the");
            section.note("projected machines; limit column applies the zero-one reading");
            section.note("(any completed sample witnesses eventual success).");

            // Per-run costs, including Euclid under message passing
            // (gcd = 1 so it elects; the round cap is generous).
            let euclid_alpha = Assignment::from_group_sizes(&[2, 3]).unwrap();
            let euclid = ProtoMc {
                samples: 800,
                max_rounds: 512,
                ..spec
            }
            .estimate(
                &EuclidChoreo { k: 2 },
                "cyclic ports",
                &Model::message_passing_cyclic(euclid_alpha.n()),
                &euclid_alpha,
            );
            assert!(
                euclid.estimate.successes > 0,
                "gcd = 1 Euclid election must complete within the cap"
            );
            let mut cost_points = points;
            cost_points.push(euclid);
            let section = rep.section("per-run protocol costs");
            section.table(counters_table(&cost_points));
            section.note("posts/sends are whole-run totals over all nodes, averaged across");
            section.note("samples; max msg B is the wire length of the largest message, so");
            section.note("simulator and socket backends report identical byte counters.");
        },
    )
}
