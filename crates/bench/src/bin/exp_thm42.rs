//! Experiment `thm42` — Theorem 4.2: message-passing (worst-case ports)
//! leader election is eventually solvable iff `gcd(n_1, …, n_k) = 1`.
//!
//! Two sections:
//! 1. adversarial ports (the Lemma 4.3 numbering for `g = gcd`): exact
//!    `p(t)` must be identically 0 when `g > 1` and positive when `g = 1`;
//! 2. random-ports ablation: with gcd > 1 a *random* numbering often does
//!    break symmetry — Theorem 4.2 is a worst-case statement.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsbt_bench::{fmt_p, fmt_sizes, run_experiment, ModelSpec, SweepSpec, Table, TaskSpec};
use rsbt_core::eventual;
use rsbt_random::Assignment;
use rsbt_sim::{Model, PortNumbering};
use rsbt_tasks::LeaderElection;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_experiment(
        "thm42",
        "Theorem 4.2: message-passing LE ⟺ gcd(n_1..n_k) = 1 (worst case)",
        "Fraigniaud-Gelles-Lotker 2021, Theorem 4.2, Lemma 4.3 (Section 4.2)",
        |eng, rep| {
            // Section 1: adversarial ports (the Lemma 4.3 numbering for the
            // assignment's actual gcd; nodes are ordered by group already).
            let spec = SweepSpec::new()
                .model(ModelSpec::adversarial_ports())
                .task(TaskSpec::fixed(LeaderElection))
                .nodes(2..=6)
                .t_cap(3)
                .bit_budget(16)
                .predicate(eventual::message_passing_worst_case_solvable);
            let rows = eng.sweep(&spec);
            let all_match = rows.iter().all(|r| r.matches == Some(true));
            let section = rep.section("adversarial ports (Lemma 4.3 numbering)");
            section.sweep("theorem 4.2", rows);
            section.note(format!(
                "paper: p(t) ≡ 0 iff gcd > 1. all_match = {all_match}"
            ));

            // Section 2: random-ports ablation for gcd > 1 profiles.
            let mut rng = StdRng::seed_from_u64(42);
            let mut ablation = Table::new(vec!["sizes", "gcd", "ports", "p(2)", "p(3)", "note"]);
            for sizes in [vec![2usize, 2], vec![3, 3], vec![2, 4]] {
                let alpha = Assignment::from_group_sizes(&sizes).unwrap();
                let n = alpha.n();
                let g = alpha.gcd_of_group_sizes() as usize;
                for (label, ports) in [
                    ("adversarial", PortNumbering::adversarial(n, g)),
                    ("random", PortNumbering::random(n, &mut rng)),
                    ("cyclic", PortNumbering::cyclic(n)),
                ] {
                    let model = Model::MessagePassing(ports);
                    let p2 = eng.exact(&model, &LeaderElection, &alpha, 2);
                    let p3 = eng.exact(&model, &LeaderElection, &alpha, 3);
                    let note = if label == "adversarial" {
                        "worst case: must be 0"
                    } else if p3 > 0.0 {
                        "average case can solve"
                    } else {
                        "this numbering also symmetric"
                    };
                    ablation.row(vec![
                        fmt_sizes(&sizes),
                        g.to_string(),
                        label.to_string(),
                        fmt_p(p2),
                        fmt_p(p3),
                        note.to_string(),
                    ]);
                }
            }
            let abl = rep.section("port-numbering ablation (gcd > 1 profiles)");
            abl.table(ablation);
            abl.note("paper: Theorem 4.2 quantifies over the WORST numbering; random");
            abl.note("numberings may (and typically do) break the symmetry anyway.");
        },
    )
}
