//! Experiment `thm42` — Theorem 4.2: message-passing (worst-case ports)
//! leader election is eventually solvable iff `gcd(n_1, …, n_k) = 1`.
//!
//! Two sections:
//! 1. adversarial ports (the Lemma 4.3 numbering for `g = gcd`): exact
//!    `p(t)` must be identically 0 when `g > 1` and positive when `g = 1`;
//! 2. random-ports ablation: with gcd > 1 a *random* numbering often does
//!    break symmetry — Theorem 4.2 is a worst-case statement.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsbt_bench::{banner, fmt_p, fmt_sizes, Table};
use rsbt_core::{eventual, probability};
use rsbt_random::Assignment;
use rsbt_sim::{Model, PortNumbering};
use rsbt_tasks::LeaderElection;

fn main() {
    banner(
        "Theorem 4.2: message-passing LE ⟺ gcd(n_1..n_k) = 1 (worst case)",
        "Fraigniaud-Gelles-Lotker 2021, Theorem 4.2, Lemma 4.3 (Section 4.2)",
    );

    // Section 1: adversarial ports.
    let mut table = Table::new(vec![
        "sizes",
        "gcd",
        "predicted",
        "p(1)",
        "p(2)",
        "p(3)",
        "limit",
        "matches thm",
    ]);
    let mut all_match = true;
    for n in 2..=6usize {
        for alpha in Assignment::enumerate_profiles(n) {
            let sizes = alpha.group_sizes();
            let g = alpha.gcd_of_group_sizes() as usize;
            // Order nodes by group (from_group_sizes already does) and use
            // the Lemma 4.3 numbering for the actual gcd.
            let ports = PortNumbering::adversarial(n, g);
            let model = Model::MessagePassing(ports);
            let t_max = 3.min(16 / alpha.k().max(1)).max(1);
            let series = probability::exact_series(&model, &LeaderElection, &alpha, t_max);
            let predicted = eventual::message_passing_worst_case_solvable(&alpha);
            let limit = eventual::lemma_3_2_limit(&series);
            let observed = limit == eventual::LimitClass::One;
            let matches = observed == predicted;
            all_match &= matches;
            let p_at = |t: usize| {
                series
                    .get(t - 1)
                    .map(|p| fmt_p(*p))
                    .unwrap_or_else(|| "-".into())
            };
            table.row(vec![
                fmt_sizes(&sizes),
                g.to_string(),
                predicted.to_string(),
                p_at(1),
                p_at(2),
                p_at(3),
                format!("{limit:?}"),
                matches.to_string(),
            ]);
        }
    }
    println!("adversarial ports (Lemma 4.3 numbering):");
    println!("{table}");
    println!("paper: p(t) ≡ 0 iff gcd > 1. all_match = {all_match}\n");

    // Section 2: random-ports ablation for gcd > 1 profiles.
    let mut rng = StdRng::seed_from_u64(42);
    let mut ablation = Table::new(vec!["sizes", "gcd", "ports", "p(2)", "p(3)", "note"]);
    for sizes in [vec![2usize, 2], vec![3, 3], vec![2, 4]] {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        let n = alpha.n();
        let g = alpha.gcd_of_group_sizes() as usize;
        for (label, ports) in [
            ("adversarial", PortNumbering::adversarial(n, g)),
            ("random", PortNumbering::random(n, &mut rng)),
            ("cyclic", PortNumbering::cyclic(n)),
        ] {
            let model = Model::MessagePassing(ports);
            let p2 = probability::exact(&model, &LeaderElection, &alpha, 2);
            let p3 = probability::exact(&model, &LeaderElection, &alpha, 3);
            let note = if label == "adversarial" {
                "worst case: must be 0"
            } else if p3 > 0.0 {
                "average case can solve"
            } else {
                "this numbering also symmetric"
            };
            ablation.row(vec![
                fmt_sizes(&sizes),
                g.to_string(),
                label.to_string(),
                fmt_p(p2),
                fmt_p(p3),
                note.to_string(),
            ]);
        }
    }
    println!("port-numbering ablation (gcd > 1 profiles):");
    println!("{ablation}");
    println!("paper: Theorem 4.2 quantifies over the WORST numbering; random");
    println!("numberings may (and typically do) break the symmetry anyway.");
}
