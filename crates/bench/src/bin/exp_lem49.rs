//! Experiment `lem49` — Lemma 4.9 and the dimension-reduction dynamics of
//! Theorem 4.2's 'if' direction.
//!
//! Verifies mechanically that for every succession `σ ≺ σ′` the unique
//! name-preserving map `δ : π̃(σ′) → π̃(σ)` is simplicial (consistency
//! classes only ever *refine*), and traces how consistency-class profiles
//! evolve round by round — the subtractive-Euclid shape driving the
//! leader-election algorithm.

use std::process::ExitCode;

use rsbt_bench::{fmt_sizes, run_experiment, Table};
use rsbt_core::evolution;
use rsbt_random::{Assignment, Realization};
use rsbt_sim::{Model, PortNumbering};

fn main() -> ExitCode {
    run_experiment(
        "lem49",
        "Lemma 4.9: backward projection maps are simplicial",
        "Fraigniaud-Gelles-Lotker 2021, Lemma 4.9 (Section 4.2)",
        |eng, rep| {
            let arena = eng.arena();
            let mut table = Table::new(vec!["model", "n", "t", "(ρ ≺ ρ′) pairs", "all simplicial"]);
            for (model, n, t) in [
                (Model::Blackboard, 2usize, 2usize),
                (Model::Blackboard, 3, 1),
                (Model::message_passing_cyclic(3), 3, 1),
                (
                    Model::MessagePassing(PortNumbering::adversarial(4, 2)),
                    4,
                    1,
                ),
            ] {
                let checked = evolution::verify_lemma_4_9(&model, n, t, arena);
                table.row(vec![
                    model.to_string(),
                    n.to_string(),
                    t.to_string(),
                    checked.to_string(),
                    "yes".to_string(),
                ]);
            }
            let section = rep.section("simpliciality of backward maps");
            section.table(table);
            section.note("paper: the map exists and is simplicial for every succession.");

            // Profile evolution: distribution of class-size profiles over
            // time for the [2,3] assignment (gcd 1) under adversarial ports.
            let profiles = rep.section(
                "consistency-class profiles over time, sizes [2,3], adversarial ports (g=1)",
            );
            let alpha = Assignment::from_group_sizes(&[2, 3]).unwrap();
            let model = Model::MessagePassing(PortNumbering::adversarial(5, 1));
            for t in 1..=3usize {
                let mut profile_counts: std::collections::BTreeMap<Vec<usize>, usize> =
                    std::collections::BTreeMap::new();
                let mut total = 0usize;
                for rho in Realization::enumerate_consistent(&alpha, t) {
                    let profile = evolution::dimension_profile(&model, &rho, arena);
                    *profile_counts.entry(profile).or_default() += 1;
                    total += 1;
                }
                let mut line = format!("  t={t}:");
                for (profile, count) in &profile_counts {
                    line.push_str(&format!(
                        "  {}×{:.0}%",
                        fmt_sizes(profile),
                        100.0 * *count as f64 / total as f64
                    ));
                }
                profiles.note(line);
            }
            profiles.note("");
            profiles.note("reading: profiles refine over time; a profile containing 1 means an");
            profiles.note("isolated vertex in π̃(ρ) — a leader. With gcd = 1 the singleton");
            profiles.note("profiles absorb all the probability as t grows (Theorem 4.2).");
        },
    )
}
