//! Experiment `ports` — exhausting the worst-case quantifier of
//! Theorem 4.2.
//!
//! For `n = 4` there are `(3!)^4 = 1296` port numberings. For the gcd-2
//! configuration `[2, 2]` we compute exact `p(t)` under *every* numbering
//! and check that (a) the minimum over numberings is 0 — some numbering
//! defeats every algorithm, as the theorem asserts via Lemma 4.3 — and
//! (b) the explicit adversarial construction attains that minimum. For
//! the gcd-1 configuration `[1, 3]` every numbering must give positive
//! probability.

use std::process::ExitCode;

use rsbt_bench::{fmt_p, run_experiment, Table};
use rsbt_random::Assignment;
use rsbt_sim::{Model, PortNumbering};
use rsbt_tasks::LeaderElection;

/// Enumerates every port numbering on `n` nodes (product of per-node
/// permutations of the other nodes).
fn all_numberings(n: usize) -> Vec<PortNumbering> {
    fn perms(mut items: Vec<usize>) -> Vec<Vec<usize>> {
        if items.len() <= 1 {
            return vec![items];
        }
        let mut out = Vec::new();
        for i in 0..items.len() {
            items.swap(0, i);
            let head = items[0];
            for mut rest in perms(items[1..].to_vec()) {
                let mut p = vec![head];
                p.append(&mut rest);
                out.push(p);
            }
            items.swap(0, i);
        }
        out
    }
    let per_node: Vec<Vec<Vec<usize>>> = (0..n)
        .map(|i| perms((0..n).filter(|&x| x != i).collect()))
        .collect();
    let mut tables = vec![Vec::new()];
    for rows in &per_node {
        let mut next = Vec::with_capacity(tables.len() * rows.len());
        for t in &tables {
            for r in rows {
                let mut t2: Vec<Vec<usize>> = t.clone();
                t2.push(r.clone());
                next.push(t2);
            }
        }
        tables = next;
    }
    tables.into_iter().map(PortNumbering::from_table).collect()
}

fn main() -> ExitCode {
    run_experiment(
        "port_sweep",
        "Port-numbering sweep: the worst case of Theorem 4.2, exhaustively",
        "Fraigniaud-Gelles-Lotker 2021, Theorem 4.2 / Lemma 4.3 (n = 4)",
        |eng, rep| {
            let numberings = all_numberings(4);
            let intro = rep.section("exhaustive numbering sweep");
            intro.note(format!(
                "enumerated {} numberings on 4 nodes",
                numberings.len()
            ));

            let mut table = Table::new(vec![
                "sizes",
                "gcd",
                "t",
                "min p(t)",
                "max p(t)",
                "#dead numberings",
                "adversarial dead",
            ]);
            for (sizes, t) in [(vec![2usize, 2], 2usize), (vec![1, 3], 2)] {
                let alpha = Assignment::from_group_sizes(&sizes).unwrap();
                let g = alpha.gcd_of_group_sizes() as usize;
                let mut min_p = f64::INFINITY;
                let mut max_p: f64 = 0.0;
                let mut dead = 0usize;
                for ports in &numberings {
                    let model = Model::MessagePassing(ports.clone());
                    let p = eng.exact(&model, &LeaderElection, &alpha, t);
                    min_p = min_p.min(p);
                    max_p = max_p.max(p);
                    if p == 0.0 {
                        dead += 1;
                    }
                }
                let adv = Model::MessagePassing(PortNumbering::adversarial(4, g));
                let adv_p = eng.exact(&adv, &LeaderElection, &alpha, t);
                table.row(vec![
                    format!("{sizes:?}"),
                    g.to_string(),
                    t.to_string(),
                    fmt_p(min_p),
                    fmt_p(max_p),
                    dead.to_string(),
                    (adv_p == min_p && (g == 1 || adv_p == 0.0)).to_string(),
                ]);
            }
            let section = rep.section("worst case over all numberings");
            section.table(table);
            section.note("paper: for gcd > 1 the minimum over numberings is 0 (Lemma 4.3");
            section.note("exhibits a witness); for gcd = 1 EVERY numbering has p(t) > 0");
            section.note("(Theorem 4.2 'if'). The adversarial construction attains the min.");
        },
    )
}
