//! Experiment `fig3` — Figure 3 of the paper: the leader-election output
//! complex `O_LE` and its consistency projection `π(O_LE)` for `n = 3`.
//!
//! The paper draws `O_LE` as three triangles `τ_1, τ_2, τ_3` and
//! `π(O_LE)` as three isolated leader vertices plus three defeated edges;
//! `π(τ_1)` is the edge `{(2,0),(3,0)}` plus the isolated vertex `(1,1)`.

use rsbt_bench::banner;
use rsbt_complex::{connectivity, homology};
use rsbt_tasks::{projection, LeaderElection, Task};

fn main() {
    banner(
        "Figure 3: O_LE and π(O_LE), n = 3",
        "Fraigniaud-Gelles-Lotker 2021, Figure 3 (Section 3.3)",
    );
    let ole = LeaderElection.output_complex(3);
    println!(
        "O_LE: {} facets, dimension {:?}, symmetric = {}",
        ole.facet_count(),
        ole.dimension(),
        ole.is_symmetric()
    );
    for f in ole.facets() {
        println!("  τ: {f}");
    }
    println!("Betti numbers of O_LE: {:?}", homology::betti_numbers(&ole));

    let pi = projection::project_complex(&ole);
    println!(
        "\nπ(O_LE): {} facets, dimension {:?}",
        pi.facet_count(),
        pi.dimension()
    );
    for f in pi.facets() {
        println!("  {f}");
    }
    println!(
        "isolated leader vertices: {} (paper: 3)",
        pi.isolated_vertices().len()
    );
    println!(
        "connected components of π(O_LE): {} ",
        connectivity::components(&pi).len()
    );

    println!("\nπ(τ_0) (the paper's π(τ_1), 0-indexed here):");
    let tau0 = LeaderElection::tau(3, 0);
    let pt = projection::project_facet(&tau0);
    for f in pt.facets() {
        println!("  {f}");
    }
    println!("paper: an isolated node (leader) and an edge (the defeated pair).");
}
