//! Experiment `fig3` — Figure 3 of the paper: the leader-election output
//! complex `O_LE` and its consistency projection `π(O_LE)` for `n = 3`.
//!
//! The paper draws `O_LE` as three triangles `τ_1, τ_2, τ_3` and
//! `π(O_LE)` as three isolated leader vertices plus three defeated edges;
//! `π(τ_1)` is the edge `{(2,0),(3,0)}` plus the isolated vertex `(1,1)`.

use std::process::ExitCode;

use rsbt_bench::run_experiment;
use rsbt_complex::{connectivity, homology};
use rsbt_tasks::{projection, LeaderElection, Task};

fn main() -> ExitCode {
    run_experiment(
        "fig3",
        "Figure 3: O_LE and π(O_LE), n = 3",
        "Fraigniaud-Gelles-Lotker 2021, Figure 3 (Section 3.3)",
        |_eng, rep| {
            let ole = LeaderElection.output_complex(3);
            let section = rep.section("O_LE");
            section.note(format!(
                "O_LE: {} facets, dimension {:?}, symmetric = {}",
                ole.facet_count(),
                ole.dimension(),
                ole.is_symmetric()
            ));
            for f in ole.facets() {
                section.note(format!("  τ: {f}"));
            }
            section.note(format!(
                "Betti numbers of O_LE: {:?}",
                homology::betti_numbers(&ole)
            ));

            let pi = projection::project_complex(&ole);
            let proj = rep.section("π(O_LE)");
            proj.note(format!(
                "π(O_LE): {} facets, dimension {:?}",
                pi.facet_count(),
                pi.dimension()
            ));
            for f in pi.facets() {
                proj.note(format!("  {f}"));
            }
            proj.note(format!(
                "isolated leader vertices: {} (paper: 3)",
                pi.isolated_vertices().len()
            ));
            proj.note(format!(
                "connected components of π(O_LE): {}",
                connectivity::components(&pi).len()
            ));

            let tau0 = LeaderElection::tau(3, 0);
            let pt = projection::project_facet(&tau0);
            let facet = rep.section("π(τ_0) (the paper's π(τ_1), 0-indexed here)");
            for f in pt.facets() {
                facet.note(format!("  {f}"));
            }
            facet.note("paper: an isolated node (leader) and an edge (the defeated pair).");
        },
    )
}
