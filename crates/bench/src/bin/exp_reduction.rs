//! Experiment `appC` — Theorem C.1: any name-independent input-output
//! task reduces to leader election, in both communication models.
//!
//! Runs consensus (the canonical name-independent task) through the
//! reduction on top of both election protocols and checks agreement +
//! validity on every trial.

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsbt_bench::{fmt_sizes, run_experiment, Table};
use rsbt_protocols::consensus::{check_consensus, consensus_node};
use rsbt_protocols::{BlackboardLeaderElection, EuclidLeaderElection};
use rsbt_random::Assignment;
use rsbt_sim::runner::{run_nodes, RunStats};
use rsbt_sim::{Model, PortNumbering};

fn main() -> ExitCode {
    run_experiment(
        "reduction",
        "Theorem C.1: name-independent tasks via leader election",
        "Fraigniaud-Gelles-Lotker 2021, Appendix C",
        |_eng, rep| {
            const TRIALS: u64 = 100;
            let mut table = Table::new(vec![
                "model",
                "sizes",
                "task",
                "valid runs",
                "mean rounds",
                "posts/run",
                "sends/run",
                "max msg B",
            ]);

            // Blackboard consensus.
            for sizes in [vec![1usize, 1, 1], vec![1, 3]] {
                let alpha = Assignment::from_group_sizes(&sizes).unwrap();
                let mut ok = 0u64;
                let mut rounds = Vec::new();
                let mut stats = RunStats::default();
                for seed in 0..TRIALS {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let inputs: Vec<u64> = (0..alpha.n()).map(|_| rng.gen_range(0..10)).collect();
                    let nodes: Vec<_> = inputs
                        .iter()
                        .map(|&v| consensus_node(BlackboardLeaderElection::new(), v))
                        .collect();
                    let out = run_nodes(&Model::Blackboard, &alpha, 512, nodes, &mut rng);
                    stats.posts += out.stats.posts;
                    stats.sends += out.stats.sends;
                    stats.max_msg_bytes = stats.max_msg_bytes.max(out.stats.max_msg_bytes);
                    if out.completed && check_consensus(&inputs, &out.outputs).is_ok() {
                        ok += 1;
                        rounds.push(out.rounds);
                    }
                }
                let mean = rounds.iter().sum::<usize>() as f64 / rounds.len().max(1) as f64;
                table.row(vec![
                    "blackboard".into(),
                    fmt_sizes(&sizes),
                    "consensus(min)".into(),
                    format!("{ok}/{TRIALS}"),
                    format!("{mean:.1}"),
                    format!("{:.1}", stats.posts as f64 / TRIALS as f64),
                    format!("{:.1}", stats.sends as f64 / TRIALS as f64),
                    stats.max_msg_bytes.to_string(),
                ]);
            }

            // Message-passing consensus over correlated sources.
            for sizes in [vec![2usize, 3], vec![1, 1, 1]] {
                let alpha = Assignment::from_group_sizes(&sizes).unwrap();
                let k = sizes.len();
                let mut ok = 0u64;
                let mut rounds = Vec::new();
                let mut stats = RunStats::default();
                for seed in 0..TRIALS {
                    let mut rng = StdRng::seed_from_u64(seed + 1000);
                    let ports = PortNumbering::random(alpha.n(), &mut rng);
                    let inputs: Vec<u64> = (0..alpha.n()).map(|_| rng.gen_range(0..10)).collect();
                    let nodes: Vec<_> = inputs
                        .iter()
                        .map(|&v| consensus_node(EuclidLeaderElection::new(k), v))
                        .collect();
                    let out =
                        run_nodes(&Model::MessagePassing(ports), &alpha, 8000, nodes, &mut rng);
                    stats.posts += out.stats.posts;
                    stats.sends += out.stats.sends;
                    stats.max_msg_bytes = stats.max_msg_bytes.max(out.stats.max_msg_bytes);
                    if out.completed && check_consensus(&inputs, &out.outputs).is_ok() {
                        ok += 1;
                        rounds.push(out.rounds);
                    }
                }
                let mean = rounds.iter().sum::<usize>() as f64 / rounds.len().max(1) as f64;
                table.row(vec![
                    "message-passing".into(),
                    fmt_sizes(&sizes),
                    "consensus(min)".into(),
                    format!("{ok}/{TRIALS}"),
                    format!("{mean:.1}"),
                    format!("{:.1}", stats.posts as f64 / TRIALS as f64),
                    format!("{:.1}", stats.sends as f64 / TRIALS as f64),
                    stats.max_msg_bytes.to_string(),
                ]);
            }

            let section = rep.section("consensus through the reduction");
            section.table(table);
            section.note("paper: whenever leader election is solvable, every name-independent");
            section.note("task is; agreement and validity hold on every completed run.");
        },
    )
}
