//! Experiment `lem43` — Lemma 4.3: under the adversarial port numbering,
//! every facet `γ` of `π̃(ρ)` satisfies `g | dim(γ) + 1` for every
//! positive-probability realization.
//!
//! Also shows the converse side: non-adversarial numberings violate the
//! divisibility, which is exactly why Theorem 4.2 needs the worst case.

use std::process::ExitCode;

use rsbt_bench::{fmt_sizes, run_experiment, Table};
use rsbt_core::consistency;
use rsbt_random::{Assignment, Realization};
use rsbt_sim::{Model, PortNumbering};

fn main() -> ExitCode {
    run_experiment(
        "lem43",
        "Lemma 4.3: g divides every consistency-class size (adversarial ports)",
        "Fraigniaud-Gelles-Lotker 2021, Lemma 4.3 (Section 4.2)",
        |eng, rep| {
            let arena = eng.arena();
            let mut table = Table::new(vec!["sizes", "g", "t", "classes checked", "violations"]);
            for (sizes, g) in [
                (vec![2usize, 2], 2usize),
                (vec![2, 4], 2),
                (vec![3, 3], 3),
                (vec![4, 4], 4),
                (vec![2, 2, 2], 2),
                (vec![6], 6),
            ] {
                let n: usize = sizes.iter().sum();
                let alpha = Assignment::from_group_sizes(&sizes).unwrap();
                let model = Model::MessagePassing(PortNumbering::adversarial(n, g));
                for t in 1..=3.min(14 / sizes.len()) {
                    let mut checked = 0usize;
                    let mut violations = 0usize;
                    for rho in Realization::enumerate_consistent(&alpha, t) {
                        for size in consistency::class_sizes(&model, &rho, arena) {
                            checked += 1;
                            if size % g != 0 {
                                violations += 1;
                            }
                        }
                    }
                    table.row(vec![
                        fmt_sizes(&sizes),
                        g.to_string(),
                        t.to_string(),
                        checked.to_string(),
                        violations.to_string(),
                    ]);
                }
            }
            let section = rep.section("divisibility check");
            section.table(table);
            section.note("paper: zero violations in every row.");

            // Converse: the cyclic numbering breaks divisibility.
            let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
            let model = Model::message_passing_cyclic(4);
            let mut broken = 0usize;
            let mut total = 0usize;
            for rho in Realization::enumerate_consistent(&alpha, 3) {
                total += 1;
                if consistency::class_sizes(&model, &rho, arena)
                    .iter()
                    .any(|s| s % 2 != 0)
                {
                    broken += 1;
                }
            }
            rep.section("converse (cyclic ports)").note(format!(
                "cyclic ports, sizes [2,2], t = 3: {broken}/{total} realizations have an \
                 odd class — the invariant is specific to the adversarial numbering."
            ));
        },
    )
}
