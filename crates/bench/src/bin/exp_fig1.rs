//! Experiment `fig1` — Figure 1 of the paper: the evolution of the
//! 2-party blackboard protocol complex `P(t)` for `t = 0, 1, 2`.
//!
//! The paper draws `P(0)` as a single edge, `P(1)` as 4 edges (the four
//! combinations of the two parties' first bits) and `P(2)` as 16 edges;
//! every edge of `P(t)` "evolves into 4 possible facets of `P(t+1)`".

use rsbt_bench::{banner, Table};
use rsbt_core::protocol_complex;
use rsbt_sim::{KnowledgeArena, Model};

fn main() {
    banner(
        "Figure 1: 2-party protocol complex evolution",
        "Fraigniaud-Gelles-Lotker 2021, Figure 1 (Section 3.1)",
    );
    let mut arena = KnowledgeArena::new();
    let mut table = Table::new(vec!["t", "vertices", "facets(edges)", "dimension", "pure"]);
    for t in 0..=2usize {
        let p = protocol_complex::build(&Model::Blackboard, 2, t, &mut arena);
        table.row(vec![
            t.to_string(),
            p.vertex_count().to_string(),
            p.facet_count().to_string(),
            format!("{:?}", p.dimension().unwrap()),
            p.is_pure().to_string(),
        ]);
    }
    println!("{table}");
    println!("paper:   P(0)=1 edge, P(1)=4 edges, P(2)=16 edges;");
    println!("         each edge of P(t) evolves into 4 edges of P(t+1).");

    // The 4-fold evolution claim, checked mechanically:
    let p1 = protocol_complex::build(&Model::Blackboard, 2, 1, &mut arena);
    let p2 = protocol_complex::build(&Model::Blackboard, 2, 2, &mut arena);
    println!(
        "measured: ratio |P(2)|/|P(1)| = {} (expected 4)",
        p2.facet_count() / p1.facet_count()
    );

    println!("\nP(1) facets (knowledge ids relative to a shared arena):");
    for f in p1.facets() {
        println!("  dim {}: {:?}", f.dimension(), f);
    }
}
