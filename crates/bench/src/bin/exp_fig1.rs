//! Experiment `fig1` — Figure 1 of the paper: the evolution of the
//! 2-party blackboard protocol complex `P(t)` for `t = 0, 1, 2`.
//!
//! The paper draws `P(0)` as a single edge, `P(1)` as 4 edges (the four
//! combinations of the two parties' first bits) and `P(2)` as 16 edges;
//! every edge of `P(t)` "evolves into 4 possible facets of `P(t+1)`".

use std::process::ExitCode;

use rsbt_bench::{run_experiment, Table};
use rsbt_core::protocol_complex;
use rsbt_sim::Model;

fn main() -> ExitCode {
    run_experiment(
        "fig1",
        "Figure 1: 2-party protocol complex evolution",
        "Fraigniaud-Gelles-Lotker 2021, Figure 1 (Section 3.1)",
        |eng, rep| {
            let arena = eng.arena();
            let mut table = Table::new(vec!["t", "vertices", "facets(edges)", "dimension", "pure"]);
            for t in 0..=2usize {
                let p = protocol_complex::build(&Model::Blackboard, 2, t, arena);
                table.row(vec![
                    t.to_string(),
                    p.vertex_count().to_string(),
                    p.facet_count().to_string(),
                    format!("{:?}", p.dimension().unwrap()),
                    p.is_pure().to_string(),
                ]);
            }
            let p1 = protocol_complex::build(&Model::Blackboard, 2, 1, arena);
            let p2 = protocol_complex::build(&Model::Blackboard, 2, 2, arena);
            let section = rep.section("complex growth");
            section.table(table);
            section.note("paper:   P(0)=1 edge, P(1)=4 edges, P(2)=16 edges;");
            section.note("         each edge of P(t) evolves into 4 edges of P(t+1).");
            section.note(format!(
                "measured: ratio |P(2)|/|P(1)| = {} (expected 4)",
                p2.facet_count() / p1.facet_count()
            ));

            let facets = rep.section("P(1) facets (knowledge ids relative to a shared arena)");
            for f in p1.facets() {
                facets.note(format!("  dim {}: {:?}", f.dimension(), f));
            }
        },
    )
}
