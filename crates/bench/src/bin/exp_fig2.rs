//! Experiment `fig2` — Figure 2 of the paper: the realization complexes
//! `R(0)` and `R(1)` for a system of 3 processes.
//!
//! The paper draws `R(0)` as a single triangle `(⊥, ⊥, ⊥)` and `R(1)` as
//! the 8 triangles `(w, b, r) ∈ {0,1}^3` on 6 vertices.

use std::process::ExitCode;

use rsbt_bench::{run_experiment, Table};
use rsbt_core::realization_complex;

fn main() -> ExitCode {
    run_experiment(
        "fig2",
        "Figure 2: realization complexes R(0), R(1), n = 3",
        "Fraigniaud-Gelles-Lotker 2021, Figure 2 (Section 3.3)",
        |_eng, rep| {
            let mut table = Table::new(vec!["t", "vertices", "facets", "dimension", "pure"]);
            for t in 0..=1usize {
                let r = realization_complex::full(3, t);
                table.row(vec![
                    t.to_string(),
                    r.vertex_count().to_string(),
                    r.facet_count().to_string(),
                    format!("{}", r.dimension().unwrap()),
                    r.is_pure().to_string(),
                ]);
            }
            let section = rep.section("complex sizes");
            section.table(table);
            section.note(
                "paper:   R(0) = 1 triangle on 3 vertices; R(1) = 8 triangles on 6 vertices.",
            );

            let r1 = realization_complex::full(3, 1);
            let facets = rep.section("R(1) facets (w = p0's bit, b = p1's, r = p2's)");
            for f in r1.facets() {
                let bits: Vec<String> = f.vertices().map(|v| v.value().to_string()).collect();
                facets.note(format!("  ({})", bits.join(", ")));
            }
        },
    )
}
