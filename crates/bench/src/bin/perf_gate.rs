//! `perf_gate <fresh.json> <committed.json>` — the CI performance gate.
//!
//! Compares a freshly generated benchmark report against the committed
//! baseline and fails (exit code 1) when performance regressed beyond the
//! documented noise margin:
//!
//! * every table column whose header contains `speedup` is reduced to its
//!   **minimum** over the rows (the weakest point is the gate), and the
//!   fresh minimum must be at least `committed / NOISE_MARGIN`;
//! * every engine counter (`dp_states=`, `row_hits=`, `memo_hits=`,
//!   `closed_form_verdicts=`) that the committed report's notes mention
//!   must appear in the fresh notes with a non-zero value — a zero means
//!   the quotient DP or the solvability memo silently stopped being
//!   exercised, which no timing column would catch.
//!
//! Sections are matched by title and tables by position within their
//! section, so a committed section the fresh run no longer produces is
//! itself a failure (a silently dropped benchmark is a regression).
//! Cosmetic drift — new sections, new columns, faster numbers — passes.

use std::process::ExitCode;

use rsbt_bench::Json;

/// Multiplicative slack on speedup floors. Benchmark bins already assert
/// hard floors in-process (e.g. ≥ 100× in `exp_perf_quotient`); the gate
/// guards the *committed* level instead, and shared CI runners jitter
/// wall-clock ratios by a few× — an 8× band separates machine noise from
/// an algorithmic regression (those show up as orders of magnitude).
const NOISE_MARGIN: f64 = 8.0;

/// Counters whose disappearance or zeroing the gate treats as a failure.
const COUNTER_KEYS: &[&str] = &["dp_states", "row_hits", "memo_hits", "closed_form_verdicts"];

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn sections(doc: &Json) -> Vec<&Json> {
    doc.get("sections")
        .and_then(Json::as_arr)
        .map(|s| s.iter().collect())
        .unwrap_or_default()
}

fn section_title(section: &Json) -> &str {
    section
        .get("title")
        .and_then(Json::as_str)
        .unwrap_or_default()
}

/// Minimum value of each `speedup`-named column in each table of the
/// section: `(table index, column name, min value)`.
fn speedup_minima(section: &Json) -> Vec<(usize, String, f64)> {
    let mut out = Vec::new();
    let tables = section.get("tables").and_then(Json::as_arr).unwrap_or(&[]);
    for (ti, table) in tables.iter().enumerate() {
        let columns = table.get("columns").and_then(Json::as_arr).unwrap_or(&[]);
        let rows = table.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
        for (ci, column) in columns.iter().enumerate() {
            let Some(name) = column.as_str() else {
                continue;
            };
            if !name.contains("speedup") {
                continue;
            }
            let min = rows
                .iter()
                .filter_map(|row| row.as_arr()?.get(ci)?.as_str()?.parse::<f64>().ok())
                .fold(f64::INFINITY, f64::min);
            if min.is_finite() {
                out.push((ti, name.to_string(), min));
            }
        }
    }
    out
}

/// Sums `key=<int>` occurrences across the section's notes; `None` when
/// the key never appears.
fn counter_total(section: &Json, key: &str) -> Option<u64> {
    let notes = section.get("notes").and_then(Json::as_arr)?;
    let mut total = None;
    for note in notes {
        let Some(text) = note.as_str() else { continue };
        for token in text.split_whitespace() {
            if let Some(value) = token.strip_prefix(&format!("{key}=")) {
                if let Ok(v) = value.trim_end_matches([',', ';', ')']).parse::<u64>() {
                    *total.get_or_insert(0) += v;
                }
            }
        }
    }
    total
}

fn gate(fresh: &Json, committed: &Json) -> Vec<String> {
    let mut failures = Vec::new();
    let fresh_sections = sections(fresh);
    for committed_section in sections(committed) {
        let title = section_title(committed_section);
        let Some(fresh_section) = fresh_sections.iter().find(|s| section_title(s) == title) else {
            failures.push(format!("section \"{title}\" missing from the fresh report"));
            continue;
        };
        let fresh_minima = speedup_minima(fresh_section);
        for (ti, column, committed_min) in speedup_minima(committed_section) {
            let Some(&(_, _, fresh_min)) = fresh_minima
                .iter()
                .find(|&&(fti, ref fc, _)| fti == ti && *fc == column)
            else {
                failures.push(format!(
                    "section \"{title}\": column \"{column}\" missing from the fresh report"
                ));
                continue;
            };
            let floor = committed_min / NOISE_MARGIN;
            if fresh_min < floor {
                failures.push(format!(
                    "section \"{title}\": min {column} regressed to {fresh_min:.1}x \
                     (committed {committed_min:.1}x, noise-margin floor {floor:.1}x)"
                ));
            } else {
                println!(
                    "ok: \"{title}\" min {column} = {fresh_min:.1}x \
                     (committed {committed_min:.1}x, floor {floor:.1}x)"
                );
            }
        }
        for key in COUNTER_KEYS {
            let Some(committed_total) = counter_total(committed_section, key) else {
                continue;
            };
            match counter_total(fresh_section, key) {
                Some(fresh_total) if fresh_total > 0 => {
                    println!("ok: \"{title}\" {key}={fresh_total} (committed {committed_total})");
                }
                Some(_) => failures.push(format!(
                    "section \"{title}\": counter {key} is zero in the fresh report \
                     (committed {committed_total}) — the instrumented path stopped running"
                )),
                None => failures.push(format!(
                    "section \"{title}\": counter {key} missing from the fresh report"
                )),
            }
        }
    }
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, fresh_path, committed_path] = args.as_slice() else {
        eprintln!("usage: perf_gate <fresh.json> <committed.json>");
        return ExitCode::from(2);
    };
    let (fresh, committed) = match (load(fresh_path), load(committed_path)) {
        (Ok(f), Ok(c)) => (f, c),
        (f, c) => {
            for err in [f.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    let failures = gate(&fresh, &committed);
    if failures.is_empty() {
        println!("perf gate passed ({fresh_path} vs {committed_path})");
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(speedup: &str, note: &str) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"x","sections":[{{"title":"s","tables":[{{"columns":["name","speedup"],
                "rows":[["a","{speedup}"],["b","9000.0"]]}}],"sweeps":[],"notes":["{note}"]}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn passes_within_the_noise_margin() {
        let committed = doc("800.0", "dp_states=50 memo_hits=3");
        let fresh = doc("101.0", "dp_states=48 memo_hits=2"); // 800/8 = 100 floor
        assert!(gate(&fresh, &committed).is_empty());
    }

    #[test]
    fn fails_past_the_noise_margin() {
        let committed = doc("800.0", "dp_states=50");
        let fresh = doc("99.0", "dp_states=48");
        let failures = gate(&fresh, &committed);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regressed"), "{failures:?}");
    }

    #[test]
    fn fails_on_zero_or_missing_counters() {
        let committed = doc("800.0", "dp_states=50 memo_hits=3");
        let zeroed = doc("800.0", "dp_states=0 memo_hits=3");
        assert!(gate(&zeroed, &committed)[0].contains("dp_states is zero"));
        let missing = doc("800.0", "memo_hits=3");
        assert!(gate(&missing, &committed)[0].contains("dp_states missing"));
    }

    #[test]
    fn fails_on_a_dropped_section() {
        let committed = doc("800.0", "dp_states=50");
        let fresh = Json::parse(r#"{"schema":"x","sections":[]}"#).unwrap();
        let failures = gate(&fresh, &committed);
        assert!(failures[0].contains("missing from the fresh report"));
    }
}
