//! Experiment `deputy` — the paper's Section 5 future-work example:
//! electing a leader *and* a deputy leader.
//!
//! The framework's per-facet solvability machinery never needed output
//! symmetry, so it applies directly. For unconstrained roles the
//! framework yields: blackboard leader+deputy is eventually solvable ⟺
//! **at least two sources are singletons** — strictly stronger than
//! Theorem 4.1's single singleton. The `LeaderAndDeputyBlackboard`
//! protocol realizes the positive side; constrained roles (only some
//! nodes may lead) break output symmetry, which is exactly why the paper
//! defers the general theory.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsbt_bench::{fmt_sizes, run_experiment, SweepSpec, Table, TaskSpec};
use rsbt_protocols::{DeputyRole, LeaderAndDeputyBlackboard};
use rsbt_random::Assignment;
use rsbt_sim::{runner, Model};
use rsbt_tasks::{LeaderAndDeputy, Task};
use std::process::ExitCode;

fn main() -> ExitCode {
    run_experiment(
        "deputy",
        "Leader + deputy election (Section 5 future work)",
        "Fraigniaud-Gelles-Lotker 2021, Section 5",
        |eng, rep| {
            // Framework sweep with the unconstrained (symmetric) complex.
            let spec = SweepSpec::new()
                .task(TaskSpec::new(|n| {
                    Box::new(LeaderAndDeputy::unconstrained(n))
                }))
                .nodes(2..=6)
                .t_cap(3)
                .bit_budget(16)
                .predicate(|alpha| alpha.group_sizes().iter().filter(|&&s| s == 1).count() >= 2);
            let rows = eng.sweep(&spec);
            let all_match = rows.iter().all(|r| r.matches == Some(true));
            let section = rep.section("framework sweep (unconstrained roles)");
            section.sweep("leader-and-deputy", rows);
            section.note("framework-derived: solvable ⟺ at least two singleton sources.");
            section.note(format!("all profiles match: {all_match}"));

            // The protocol realizes the positive side.
            const TRIALS: u64 = 100;
            let mut proto = Table::new(vec!["sizes", "elected (L,D)", "mean rounds"]);
            for sizes in [vec![1usize, 1, 2], vec![1, 1, 1], vec![1, 1, 4]] {
                let alpha = Assignment::from_group_sizes(&sizes).unwrap();
                let mut ok = 0u64;
                let mut rounds = Vec::new();
                for seed in 0..TRIALS {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let out = runner::run(
                        &Model::Blackboard,
                        &alpha,
                        512,
                        LeaderAndDeputyBlackboard::new,
                        &mut rng,
                    );
                    if out.completed {
                        let l = out
                            .outputs
                            .iter()
                            .filter(|o| **o == Some(DeputyRole::Leader))
                            .count();
                        let d = out
                            .outputs
                            .iter()
                            .filter(|o| **o == Some(DeputyRole::Deputy))
                            .count();
                        if (l, d) == (1, 1) {
                            ok += 1;
                            rounds.push(out.rounds);
                        }
                    }
                }
                let mean = rounds.iter().sum::<usize>() as f64 / rounds.len().max(1) as f64;
                proto.row(vec![
                    fmt_sizes(&sizes),
                    format!("{ok}/{TRIALS}"),
                    format!("{mean:.1}"),
                ]);
            }
            rep.section("protocol (LeaderAndDeputyBlackboard)")
                .table(proto);

            // Constrained roles break symmetry — flagged, not silently
            // accepted.
            let constrained =
                LeaderAndDeputy::new(vec![true, false, false], vec![false, true, true]);
            rep.section("constrained roles").note(format!(
                "constrained roles (p0 leads, p1/p2 deputize): output symmetric = {} — \
                 outside the paper's symmetric framework, as Section 5 notes.",
                constrained.is_symmetric_for(3)
            ));
        },
    )
}
