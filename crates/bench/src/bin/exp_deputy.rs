//! Experiment `deputy` — the paper's Section 5 future-work example:
//! electing a leader *and* a deputy leader.
//!
//! The framework's per-facet solvability machinery never needed output
//! symmetry, so it applies directly. For unconstrained roles the
//! framework yields: blackboard leader+deputy is eventually solvable ⟺
//! **at least two sources are singletons** — strictly stronger than
//! Theorem 4.1's single singleton. The `LeaderAndDeputyBlackboard`
//! protocol realizes the positive side; constrained roles (only some
//! nodes may lead) break output symmetry, which is exactly why the paper
//! defers the general theory.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsbt_bench::{banner, fmt_p, fmt_sizes, Table};
use rsbt_core::{eventual, probability};
use rsbt_protocols::{DeputyRole, LeaderAndDeputyBlackboard};
use rsbt_random::Assignment;
use rsbt_sim::{runner, Model};
use rsbt_tasks::{LeaderAndDeputy, Task};

fn main() {
    banner(
        "Leader + deputy election (Section 5 future work)",
        "Fraigniaud-Gelles-Lotker 2021, Section 5",
    );

    // Framework sweep with the unconstrained (symmetric) output complex.
    let mut table = Table::new(vec![
        "sizes",
        "≥2 singletons",
        "p(1)",
        "p(2)",
        "p(3)",
        "limit",
        "matches",
    ]);
    let mut all_match = true;
    for n in 2..=6usize {
        for alpha in Assignment::enumerate_profiles(n) {
            let sizes = alpha.group_sizes();
            let task = LeaderAndDeputy::unconstrained(n);
            let t_max = 3.min(16 / alpha.k().max(1)).max(1);
            let series = probability::exact_series(&Model::Blackboard, &task, &alpha, t_max);
            let limit = eventual::lemma_3_2_limit(&series);
            let observed = limit == eventual::LimitClass::One;
            let predicted = sizes.iter().filter(|&&s| s == 1).count() >= 2;
            let matches = observed == predicted;
            all_match &= matches;
            let p_at = |t: usize| {
                series
                    .get(t - 1)
                    .map(|p| fmt_p(*p))
                    .unwrap_or_else(|| "-".into())
            };
            table.row(vec![
                fmt_sizes(&sizes),
                predicted.to_string(),
                p_at(1),
                p_at(2),
                p_at(3),
                format!("{limit:?}"),
                matches.to_string(),
            ]);
        }
    }
    println!("framework sweep (unconstrained roles):");
    println!("{table}");
    println!("framework-derived: solvable ⟺ at least two singleton sources.");
    println!("all profiles match: {all_match}\n");

    // The protocol realizes the positive side.
    const TRIALS: u64 = 100;
    let mut proto = Table::new(vec!["sizes", "elected (L,D)", "mean rounds"]);
    for sizes in [vec![1usize, 1, 2], vec![1, 1, 1], vec![1, 1, 4]] {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        let mut ok = 0u64;
        let mut rounds = Vec::new();
        for seed in 0..TRIALS {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = runner::run(
                &Model::Blackboard,
                &alpha,
                512,
                LeaderAndDeputyBlackboard::new,
                &mut rng,
            );
            if out.completed {
                let l = out
                    .outputs
                    .iter()
                    .filter(|o| **o == Some(DeputyRole::Leader))
                    .count();
                let d = out
                    .outputs
                    .iter()
                    .filter(|o| **o == Some(DeputyRole::Deputy))
                    .count();
                if (l, d) == (1, 1) {
                    ok += 1;
                    rounds.push(out.rounds);
                }
            }
        }
        let mean = rounds.iter().sum::<usize>() as f64 / rounds.len().max(1) as f64;
        proto.row(vec![
            fmt_sizes(&sizes),
            format!("{ok}/{TRIALS}"),
            format!("{mean:.1}"),
        ]);
    }
    println!("protocol (LeaderAndDeputyBlackboard):");
    println!("{proto}");

    // Constrained roles break symmetry — flagged, not silently accepted.
    let constrained =
        rsbt_tasks::LeaderAndDeputy::new(vec![true, false, false], vec![false, true, true]);
    println!(
        "constrained roles (p0 leads, p1/p2 deputize): output symmetric = {} — \
         outside the paper's symmetric framework, as Section 5 notes.",
        constrained.is_symmetric_for(3)
    );
}
