//! Experiment `perf_quotient` — the quotient DP engine
//! (`rsbt_core::engine_dp`) head-to-head against the PR 3 prefix-sharing
//! tree engine, on points chosen to be *honest about pruning*.
//!
//! Monotone subtree pruning makes the tree engine quasi-DP-fast on
//! easily-solved tasks: once most of the frontier solves, its unsolved
//! residue collapses to a handful of partitions and the walk is cheap. So
//! a speedup measured there would understate nothing and prove nothing.
//! The head-to-head grid therefore includes **never-solving** profiles
//! (leader election on `[2, 2]` and on a single shared source), where the
//! tree engine's unsolved frontier stays the full `2^{k·t}` and the DP's
//! stays at a handful of equality states — the regime the quotient
//! construction actually targets. On those points the bin *asserts* the
//! ≥ 100× speedup claimed in the acceptance criteria.
//!
//! Every comparison first asserts bit-identity of the integer solved
//! counts (`u64` widened to `u128`) between the two engines — both
//! models, faulted included — then times. A final section commits
//! first-ever exact data past the old `k·t ≤ 30` wall, out to the
//! `u128` dyadic budget at `k·t = 126`.

use std::process::ExitCode;
use std::time::Instant;

use rsbt_bench::{fmt_sizes, run_experiment, Table};
use rsbt_core::engine::{self, SolvabilityMemo, TaskKernel};
use rsbt_core::engine_dp::{self, DpStats};
use rsbt_random::Assignment;
use rsbt_sim::{FaultSchedule, KnowledgeArena, Model};
use rsbt_tasks::{KLeaderElection, LeaderElection, Task};

/// Repetitions for DP timings, reported as the **minimum** per-call time.
/// Single sweeps finish in microseconds, so one `Instant` delta would
/// divide by timer noise — and the mean is wrong too: right after a
/// multi-gigabyte tree walk, the allocator returns the freed arena to the
/// OS lazily, and that reclamation lands as a one-off multi-hundred-ms
/// stall on an *arbitrary later* small allocation (observed empirically:
/// one DP call in thirty-two absorbing ~700 ms). The minimum over reps is
/// the steady-state sweep cost, which is the honest thing to compare
/// against a one-shot tree walk.
const DP_REPS: u32 = 32;

/// Times `f` over [`DP_REPS`] calls and returns `(last result, minimum
/// per-call milliseconds)`.
fn time_min<R>(mut f: impl FnMut() -> R) -> (R, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..DP_REPS {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (out.expect("DP_REPS >= 1"), best)
}

/// The ≥ 100× acceptance floor, asserted on the adversarial-for-pruning
/// points (see the module docs for why only those are honest).
const SPEEDUP_FLOOR: f64 = 100.0;

/// One head-to-head point: model family, profile, horizon, and whether
/// the speedup floor is asserted (never-solving points only).
struct Point {
    mp: bool,
    sizes: &'static [usize],
    t_max: usize,
    assert_floor: bool,
}

/// The grid. Solvable profiles run to the old 30-bit wall (the tree
/// engine prunes them fast — included for bit-identity coverage, not
/// speedup claims); never-solving profiles stop where the *unpruned*
/// tree walk still finishes in seconds.
const GRID: &[Point] = &[
    // Full-range bit-identity on pruned (solvable) points: k·t = 30.
    Point {
        mp: false,
        sizes: &[1, 2],
        t_max: 15,
        assert_floor: false,
    },
    Point {
        mp: false,
        sizes: &[1, 3],
        t_max: 15,
        assert_floor: false,
    },
    Point {
        mp: false,
        sizes: &[1, 1, 2],
        t_max: 10,
        assert_floor: false,
    },
    Point {
        mp: true,
        sizes: &[1, 2],
        t_max: 15,
        assert_floor: false,
    },
    Point {
        mp: true,
        sizes: &[1, 1, 2],
        t_max: 10,
        assert_floor: false,
    },
    // Adversarial for pruning: LE on [2,2] never solves (no singleton
    // class can ever form), so the tree engine walks all 4^t nodes while
    // the DP holds two states. k·t = 22.
    Point {
        mp: false,
        sizes: &[2, 2],
        t_max: 11,
        assert_floor: true,
    },
    // Same, degenerate k = 1: one shared source never breaks symmetry;
    // 2^20 unpruned tree nodes vs one DP state per round.
    Point {
        mp: false,
        sizes: &[4],
        t_max: 20,
        assert_floor: true,
    },
];

/// Tallies aggregated across every DP sweep in the bin, emitted in the
/// `key=value` form the CI perf gate greps.
#[derive(Default)]
struct Totals {
    dp_states: usize,
    row_hits: u64,
    rows_built: u64,
    closed_form_verdicts: u64,
    /// Solvability-memo hits from the *tree-engine* comparison runs: the
    /// DP interns each equality state once (it *is* the transposition
    /// table, so its own memo never repeats a partition), while the tree
    /// walk re-encounters partitions per node — the memo is what keeps
    /// that affordable.
    memo_hits: u64,
}

impl Totals {
    fn absorb_dp(&mut self, stats: &DpStats) {
        self.dp_states += stats.states;
        self.row_hits += stats.row_hits;
        self.rows_built += stats.rows_built;
        self.closed_form_verdicts += stats.closed_form_verdicts;
        self.memo_hits += stats.memo_hits;
    }
}

/// The tree engine through its shard entry point, so the bin owns the
/// [`SolvabilityMemo`] and can report its hit counters.
fn tree_counts<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    totals: &mut Totals,
) -> Vec<u64> {
    let table = engine::fallback_table(task, alpha.n());
    let kernel = match table.as_ref() {
        Some(table) => TaskKernel::new(task, table),
        None => TaskKernel::closed_form_only(task),
    };
    let mut memo = SolvabilityMemo::new();
    let counts = engine::solved_counts_shard(
        model,
        &kernel,
        alpha,
        t_max,
        0,
        0,
        1,
        &mut KnowledgeArena::new(),
        &mut memo,
    );
    totals.memo_hits += memo.memo_hits();
    counts
}

fn head_to_head(table: &mut Table, threads: usize, totals: &mut Totals) -> f64 {
    let mut min_floor_speedup = f64::INFINITY;
    for point in GRID {
        let alpha = Assignment::from_group_sizes(point.sizes).unwrap();
        let model = if point.mp {
            Model::message_passing_cyclic(alpha.n())
        } else {
            Model::Blackboard
        };
        let bits = alpha.k() * point.t_max;

        let start = Instant::now();
        let tree = tree_counts(&model, &LeaderElection, &alpha, point.t_max, totals);
        let tree_ms = start.elapsed().as_secs_f64() * 1e3;

        let ((dp, stats), dp_ms) = time_min(|| {
            engine_dp::solved_series_with_stats(
                &model,
                &LeaderElection,
                &alpha,
                point.t_max,
                threads,
            )
        });
        totals.absorb_dp(&stats);

        let widened: Vec<u128> = tree.iter().map(|&c| u128::from(c)).collect();
        assert_eq!(
            dp, widened,
            "quotient engine diverged from the tree engine on {:?} (mp={}) t_max={}",
            point.sizes, point.mp, point.t_max
        );

        let speedup = tree_ms / dp_ms.max(1e-9);
        if point.assert_floor {
            assert!(
                speedup >= SPEEDUP_FLOOR,
                "speedup {speedup:.1}x below the {SPEEDUP_FLOOR}x floor on the \
                 never-solving point {:?} t_max={} (tree {tree_ms:.2} ms, dp {dp_ms:.4} ms)",
                point.sizes,
                point.t_max
            );
            min_floor_speedup = min_floor_speedup.min(speedup);
        }

        table.row(vec![
            if point.mp { "mp-cyclic" } else { "blackboard" }.to_string(),
            fmt_sizes(point.sizes),
            alpha.k().to_string(),
            point.t_max.to_string(),
            bits.to_string(),
            format!("{tree_ms:.2}"),
            format!("{dp_ms:.4}"),
            format!("{speedup:.1}"),
            stats.states.to_string(),
            stats.frontier_max.to_string(),
            point.assert_floor.to_string(),
        ]);
    }
    min_floor_speedup
}

fn faulted_check(table: &mut Table, threads: usize, totals: &mut Totals) {
    // A fixed schedule with an omission and a crash mid-horizon: the DP
    // threads round-indexed silence masks through its transitions and
    // must reproduce the tree engine's faulted tallies exactly.
    let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
    let t_max = 10;
    let mut sched = FaultSchedule::empty(3, t_max);
    sched.set_omission(0, 3);
    sched.set_crash(2, 5);
    for mp in [false, true] {
        let model = if mp {
            Model::message_passing_cyclic(3)
        } else {
            Model::Blackboard
        };
        let start = Instant::now();
        let tree = engine::solved_counts_faulted(
            &model,
            &LeaderElection,
            &alpha,
            t_max,
            &sched,
            &mut KnowledgeArena::new(),
        );
        let tree_ms = start.elapsed().as_secs_f64() * 1e3;
        let ((dp, stats), dp_ms) = time_min(|| {
            engine_dp::solved_series_faulted_with_stats(
                &model,
                &LeaderElection,
                &alpha,
                t_max,
                &sched,
                threads,
            )
        });
        totals.absorb_dp(&stats);
        let widened: Vec<u128> = tree.iter().map(|&c| u128::from(c)).collect();
        assert_eq!(dp, widened, "faulted divergence (mp={mp})");
        table.row(vec![
            if mp { "mp-cyclic" } else { "blackboard" }.to_string(),
            "omit(0@3) crash(2@5)".to_string(),
            t_max.to_string(),
            format!("{tree_ms:.2}"),
            format!("{dp_ms:.4}"),
            "true".to_string(),
        ]);
    }
}

fn beyond_the_wall(table: &mut Table, threads: usize, totals: &mut Totals) {
    // First exact data past k·t = 30, out to the 126-bit edge. Closed
    // forms where they exist pin the integer counts, not just the floats.
    let points: &[(&[usize], Box<dyn Task>, usize)] = &[
        (&[1, 2], Box::new(LeaderElection), 63),
        (&[2, 2], Box::new(LeaderElection), 63),
        (&[2, 2], Box::new(KLeaderElection::new(2)), 63),
        (&[1, 1, 2], Box::new(LeaderElection), 42),
        (&[1, 1, 1, 2], Box::new(LeaderElection), 31),
    ];
    for (sizes, task, t_max) in points {
        let alpha = Assignment::from_group_sizes(sizes).unwrap();
        let bits = alpha.k() * t_max;
        assert!(bits > 30 && bits <= engine_dp::MAX_DP_BITS);
        let ((counts, stats), dp_ms) = time_min(|| {
            engine_dp::solved_series_with_stats(
                &Model::Blackboard,
                task.as_ref(),
                &alpha,
                *t_max,
                threads,
            )
        });
        totals.absorb_dp(&stats);
        let last = counts[t_max - 1];
        let p = last as f64 / (1u128 << bits) as f64;
        table.row(vec![
            fmt_sizes(sizes),
            task.name().to_string(),
            t_max.to_string(),
            bits.to_string(),
            format!("{last:x}"),
            format!("{p:.6}"),
            format!("{dp_ms:.4}"),
            stats.states.to_string(),
        ]);
    }

    // Pin the 126-bit edge with the [1, m] closed form: counts[t-1] =
    // 2^{2t} − 2^t — at t = 63 that is 2^126 − 2^63, the largest tally
    // the dyadic budget admits.
    let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
    let series = engine_dp::solved_series(&Model::Blackboard, &LeaderElection, &alpha, 63);
    assert_eq!(series[62], (1u128 << 126) - (1u128 << 63), "126-bit edge");
    // And [2, 2] never solves: every beyond-the-wall count stays zero.
    let series = engine_dp::solved_series(
        &Model::Blackboard,
        &LeaderElection,
        &Assignment::from_group_sizes(&[2, 2]).unwrap(),
        63,
    );
    assert!(series.iter().all(|&c| c == 0), "LE on [2,2] is a zero row");
}

fn main() -> ExitCode {
    run_experiment(
        "perf_quotient",
        "Quotient DP engine vs prefix-sharing tree engine",
        "DESIGN.md section 4.10 (knowledge-equality DP); Definition 3.4 partitions",
        |eng, rep| {
            let threads = eng.threads();
            let mut totals = Totals::default();

            let mut table = Table::new(vec![
                "model",
                "sizes",
                "k",
                "t_max",
                "bits",
                "tree_ms",
                "dp_ms",
                "speedup",
                "dp_states",
                "frontier_max",
                "floor_asserted",
            ]);
            let min_floor = head_to_head(&mut table, threads, &mut totals);
            let section = rep.section("bit-identity + speedup (tree engine vs quotient DP)");
            section.table(table);
            section.note(
                "integer solved counts asserted bit-identical on every point before timing; \
                 never-solving points (floor_asserted = true) keep the tree engine's frontier \
                 at the full 2^(kt) while the DP holds <= Bell(k) states — the honest regime \
                 for the speedup claim, since pruning makes solvable points cheap for both",
            );
            section.note(format!(
                "minimum speedup on floor-asserted points: {min_floor:.0}x (asserted >= \
                 {SPEEDUP_FLOOR}x in-process; perf-gate noise margin documented in ci.yml)"
            ));

            let mut table = Table::new(vec![
                "model",
                "schedule",
                "t_max",
                "tree_ms",
                "dp_ms",
                "identical",
            ]);
            faulted_check(&mut table, threads, &mut totals);
            let section = rep.section("faulted fixed-schedule enumeration through the DP");
            section.table(table);
            section.note(
                "round-indexed silence masks meet the equality state per transition; counts \
                 bit-identical to the tree engine's faulted tallies on both models",
            );

            let mut table = Table::new(vec![
                "sizes",
                "task",
                "t_max",
                "bits",
                "count_hex",
                "p",
                "dp_ms",
                "dp_states",
            ]);
            beyond_the_wall(&mut table, threads, &mut totals);
            let section = rep.section("beyond the wall: exact counts to k*t = 126");
            section.table(table);
            section.note(
                "first exact data past the old 30-bit budget: u128 dyadic counts, closed-form \
                 pinned at the 126-bit edge (2^126 - 2^63 solving realizations for [1,2] at \
                 t = 63)",
            );
            section.note(format!(
                "aggregate counters: dp_states={} rows_built={} row_hits={} \
                 closed_form_verdicts={} memo_hits={}",
                totals.dp_states,
                totals.rows_built,
                totals.row_hits,
                totals.closed_form_verdicts,
                totals.memo_hits
            ));
        },
    )
}
