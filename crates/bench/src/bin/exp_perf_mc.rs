//! Experiment `perf_mc` — the deterministic parallel Monte-Carlo
//! subsystem, validated and benchmarked:
//!
//! 1. **cross-validation** — estimates against exact enumeration on an
//!    exact-reachable grid, agreement within the z = 4 Wilson interval
//!    asserted in-process;
//! 2. **thread invariance** — the estimate is asserted bit-identical for
//!    `threads ∈ {1, 2, 4, 8}` (per-sample RNG streams keyed by sample
//!    index, contiguous sample sharding, integer merges);
//! 3. **performance** — the serial pre-kernel reference
//!    (`monte_carlo_reference`: one `Realization`, one full `Execution`
//!    trace, and one consistency partition allocated per sample) versus
//!    the serial kernel, the parallel kernel
//!    (`RoundStepper` + `SolvabilityMemo`, allocation-free steps,
//!    first-solving-round early exit), and the **bit-sliced kernel**
//!    (`monte_carlo_bitsliced`: 64 samples per `u64` lane word, verdicts
//!    from a compiled `VerdictPlan`), with ≥ 5× floors asserted for the
//!    parallel kernel over the reference *and* for the bit-sliced kernel
//!    over the parallel (PR 5) kernel;
//! 4. **lane bit-identity** — `monte_carlo_bitsliced` is asserted
//!    bit-identical to `monte_carlo_parallel` for the same
//!    `(seed, samples)` across `threads ∈ {1, 2, 4, 8}` and
//!    non-multiple-of-64 sample counts (lane `l` of word `w` is exactly
//!    stream `w·64 + l`), series included;
//! 5. **beyond the tree-engine wall** — estimator data past
//!    `k·t > TREE_EXACT_BITS = 30`: LE / 2-LE / 3-LE / WSB series at
//!    `n ∈ {16, 24}` up to `t = 32` through the sweep engine's
//!    estimator mode (now dispatched bit-sliced), plus adaptive-stopping
//!    marquee points. (The quotient DP engine now reaches `k·t ≤ 126`
//!    exactly — see `exp_perf_quotient` — so these rows double as a
//!    cross-check corpus rather than the only data in the regime.)
//!
//! The verdict-path counters are asserted in-process: built-in tasks
//! answer in closed form or through compiled lane plans — the dense
//! fallback never runs and no lane is ever peeled.

use std::process::ExitCode;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsbt_bench::{fmt_p, fmt_sizes, run_experiment, McSweep, RowMode, SweepSpec, Table, TaskSpec};
use rsbt_core::probability::{self, AdaptiveConfig, Estimate, McStats, TREE_EXACT_BITS};
use rsbt_random::Assignment;
use rsbt_sim::Model;
use rsbt_tasks::{KLeaderElection, LeaderElection, Task, WeakSymmetryBreaking};

/// The exact-reachable cross-validation grid: `(task, sizes, t)` with
/// `k·t` well inside the enumeration budget.
fn validation_grid() -> Vec<(Box<dyn Task + Send + Sync>, Vec<usize>, usize)> {
    vec![
        (Box::new(LeaderElection), vec![1, 2], 6),
        (Box::new(LeaderElection), vec![1, 2, 2], 5),
        (Box::new(LeaderElection), vec![2, 2], 8),
        (Box::new(KLeaderElection::new(2)), vec![2, 2], 8),
        (Box::new(KLeaderElection::new(2)), vec![1, 1, 2], 5),
        (Box::new(WeakSymmetryBreaking), vec![2, 2], 8),
        (Box::new(WeakSymmetryBreaking), vec![1, 3], 6),
    ]
}

const VALIDATION_SAMPLES: usize = 30_000;
const VALIDATION_SEED: u64 = 2021;

fn cross_validation(
    eng: &mut rsbt_bench::SweepEngine,
    table: &mut Table,
    stats: &mut McStats,
) -> usize {
    let threads = eng.threads();
    let mut points = 0;
    for (task, sizes, t) in validation_grid() {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        let exact = eng.exact(&Model::Blackboard, task.as_ref(), &alpha, t);
        let (est, st) = probability::monte_carlo_parallel_with_stats(
            &Model::Blackboard,
            task.as_ref(),
            &alpha,
            t,
            VALIDATION_SAMPLES,
            VALIDATION_SEED,
            threads,
        );
        stats.merge(&st);
        let consistent = est.is_consistent_with(exact, 4.0);
        assert!(
            consistent,
            "{} {sizes:?} t={t}: exact {exact} outside the z=4 Wilson interval \
             [{}, {}] of {est:?}",
            task.name(),
            est.wilson(4.0).0,
            est.wilson(4.0).1,
        );
        points += 1;
        table.row(vec![
            task.name().into_owned(),
            fmt_sizes(&sizes),
            t.to_string(),
            fmt_p(exact),
            fmt_p(est.p),
            fmt_p(est.ci_lo),
            fmt_p(est.ci_hi),
            consistent.to_string(),
        ]);
    }
    points
}

fn thread_invariance(table: &mut Table) {
    for (task, sizes, t) in [
        (
            Box::new(LeaderElection) as Box<dyn Task + Send + Sync>,
            vec![1usize, 2, 2],
            5usize,
        ),
        (Box::new(WeakSymmetryBreaking), vec![2, 2], 8),
    ] {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        let mut estimates: Vec<(usize, Estimate)> = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let est = probability::monte_carlo_parallel(
                &Model::Blackboard,
                task.as_ref(),
                &alpha,
                t,
                VALIDATION_SAMPLES,
                VALIDATION_SEED,
                threads,
            );
            estimates.push((threads, est));
        }
        let (_, first) = estimates[0];
        for &(threads, est) in &estimates {
            assert_eq!(
                est,
                first,
                "{} {sizes:?}: estimate differs at threads={threads}",
                task.name()
            );
        }
        table.row(vec![
            task.name().into_owned(),
            fmt_sizes(&sizes),
            t.to_string(),
            estimates
                .iter()
                .map(|(th, _)| th.to_string())
                .collect::<Vec<_>>()
                .join("/"),
            format!("{}/{}", first.solved, first.samples),
            "true".into(),
        ]);
    }
}

/// Times one estimator call in milliseconds. The first (discarded) run
/// warms the allocator: the reference path cycles hundreds of megabytes
/// of arena through the heap, and whichever estimator runs next would
/// otherwise absorb the page-fault bill for it (measured ~5× inflation),
/// corrupting the comparison.
fn time_ms<F: Fn() -> Estimate>(f: F) -> (Estimate, f64) {
    let _ = f();
    let start = Instant::now();
    let est = f();
    (est, start.elapsed().as_secs_f64() * 1e3)
}

const PERF_SAMPLES: usize = 20_000;

fn performance(table: &mut Table, threads: usize, samples: usize, seed: u64) -> (f64, f64) {
    let mut min_parallel_speedup = f64::INFINITY;
    let mut min_bitsliced_speedup = f64::INFINITY;
    for (task, sizes, t) in [
        (
            Box::new(LeaderElection) as Box<dyn Task + Send + Sync>,
            vec![1usize, 15],
            24usize,
        ),
        (Box::new(WeakSymmetryBreaking), vec![5, 5], 24),
    ] {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        let bits = alpha.k() * t;
        let (ref_est, ref_ms) = time_ms(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            probability::monte_carlo_reference(
                &Model::Blackboard,
                task.as_ref(),
                &alpha,
                t,
                samples,
                &mut rng,
            )
        });
        let (kernel_est, kernel_ms) = time_ms(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            probability::monte_carlo(
                &Model::Blackboard,
                task.as_ref(),
                &alpha,
                t,
                samples,
                &mut rng,
            )
        });
        assert_eq!(
            kernel_est,
            ref_est,
            "{} {sizes:?}: kernel and reference must be bit-identical from \
             equal generator states",
            task.name()
        );
        let (parallel_est, parallel_ms) = time_ms(|| {
            probability::monte_carlo_parallel(
                &Model::Blackboard,
                task.as_ref(),
                &alpha,
                t,
                samples,
                seed,
                threads,
            )
        });
        let (bitsliced_est, bitsliced_ms) = time_ms(|| {
            probability::monte_carlo_bitsliced(
                &Model::Blackboard,
                task.as_ref(),
                &alpha,
                t,
                samples,
                seed,
                threads,
            )
        });
        assert_eq!(
            bitsliced_est,
            parallel_est,
            "{} {sizes:?}: bit-sliced and parallel kernels must be \
             bit-identical on the same (seed, samples)",
            task.name()
        );
        let parallel_speedup = ref_ms / parallel_ms.max(1e-6);
        let bitsliced_speedup = parallel_ms / bitsliced_ms.max(1e-6);
        min_parallel_speedup = min_parallel_speedup.min(parallel_speedup);
        min_bitsliced_speedup = min_bitsliced_speedup.min(bitsliced_speedup);
        table.row(vec![
            task.name().into_owned(),
            fmt_sizes(&sizes),
            t.to_string(),
            bits.to_string(),
            format!("{ref_ms:.1}"),
            format!("{kernel_ms:.1}"),
            format!("{parallel_ms:.1}"),
            format!("{bitsliced_ms:.2}"),
            format!("{parallel_speedup:.1}"),
            format!("{bitsliced_speedup:.1}"),
        ]);
    }
    assert!(
        min_parallel_speedup >= 5.0,
        "acceptance: parallel kernel must be >= 5x over the serial \
         reference (measured {min_parallel_speedup:.1}x)"
    );
    assert!(
        min_bitsliced_speedup >= 5.0,
        "acceptance: bit-sliced kernel must be >= 5x over the PR 5 \
         parallel kernel (measured {min_bitsliced_speedup:.1}x)"
    );
    (min_parallel_speedup, min_bitsliced_speedup)
}

/// Acceptance: `monte_carlo_bitsliced` estimates (and whole series) are
/// bit-identical to the PR 5 scalar kernel for the same `(seed, samples)`
/// across thread counts and lane fills — including counts straddling
/// word boundaries. Returns the merged lane-path statistics.
fn bitsliced_identity(table: &mut Table, samples: usize, seed: u64, stats: &mut McStats) {
    for (task, sizes, t) in [
        (
            Box::new(LeaderElection) as Box<dyn Task + Send + Sync>,
            vec![1usize, 2, 2],
            5usize,
        ),
        (Box::new(WeakSymmetryBreaking), vec![2, 2], 8),
    ] {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        for count in [1usize, 63, 65, samples] {
            let reference = probability::monte_carlo_parallel(
                &Model::Blackboard,
                task.as_ref(),
                &alpha,
                t,
                count,
                seed,
                1,
            );
            for threads in [1usize, 2, 4, 8] {
                let (est, st) = probability::monte_carlo_bitsliced_with_stats(
                    &Model::Blackboard,
                    task.as_ref(),
                    &alpha,
                    t,
                    count,
                    seed,
                    threads,
                );
                stats.merge(&st);
                assert_eq!(
                    est,
                    reference,
                    "{} {sizes:?} samples={count}: bit-sliced estimate differs \
                     at threads={threads}",
                    task.name()
                );
            }
            table.row(vec![
                task.name().into_owned(),
                fmt_sizes(&sizes),
                t.to_string(),
                count.to_string(),
                "1/2/4/8".into(),
                format!("{}/{}", reference.solved, reference.samples),
                "true".into(),
            ]);
        }
        // Whole-series identity on a word-straddling count.
        let scalar_series = probability::monte_carlo_series_parallel(
            &Model::Blackboard,
            task.as_ref(),
            &alpha,
            t,
            130,
            seed,
            1,
        );
        let sliced_series = probability::monte_carlo_bitsliced_series(
            &Model::Blackboard,
            task.as_ref(),
            &alpha,
            t,
            130,
            seed,
            4,
        );
        assert_eq!(
            sliced_series,
            scalar_series,
            "{} {sizes:?}: series must be bit-identical",
            task.name()
        );
    }
}

/// The beyond-the-tree-wall scenario sweeps: every row here has
/// `k·t_cap > TREE_EXACT_BITS`, i.e. the tree-walking engines cannot
/// produce it (the quotient DP can, up to 126 bits — these rows stay in
/// estimator mode to keep exercising the sampling path at scale).
fn scenario_spec(n: usize) -> SweepSpec {
    SweepSpec::new()
        .task(TaskSpec::fixed(LeaderElection))
        .task(TaskSpec::fixed(KLeaderElection::new(2)))
        .task(TaskSpec::fixed(KLeaderElection::new(3)))
        .task(TaskSpec::fixed(WeakSymmetryBreaking))
        .nodes(n..=n)
        .t_cap(32)
        .bit_budget(TREE_EXACT_BITS)
        .filter(|alpha| alpha.k() == 2)
        .mc(McSweep {
            samples: 4_096,
            seed: 0x5253_4254,
        })
}

fn adaptive_marquee(table: &mut Table, threads: usize, stats: &mut McStats) {
    let cfg = AdaptiveConfig {
        target_half_width: 5e-3,
        max_samples: 1 << 18,
        batch: 1 << 13,
    };
    for (task, sizes, t) in [
        (
            Box::new(LeaderElection) as Box<dyn Task + Send + Sync>,
            vec![1usize, 23],
            32usize,
        ),
        (Box::new(KLeaderElection::new(3)), vec![1, 2, 21], 32),
        (Box::new(WeakSymmetryBreaking), vec![12, 12], 32),
    ] {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        let bits = alpha.k() * t;
        assert!(bits > TREE_EXACT_BITS, "marquee points live past the wall");
        let (est, st) = probability::monte_carlo_adaptive(
            &Model::Blackboard,
            task.as_ref(),
            &alpha,
            t,
            &cfg,
            2021,
            threads,
        );
        stats.merge(&st);
        assert!(
            est.half_width() <= cfg.target_half_width || est.samples == cfg.max_samples,
            "adaptive loop must meet the target or exhaust the cap"
        );
        table.row(vec![
            task.name().into_owned(),
            fmt_sizes(&sizes),
            t.to_string(),
            bits.to_string(),
            est.samples.to_string(),
            fmt_p(est.p),
            fmt_p(est.ci_lo),
            fmt_p(est.ci_hi),
        ]);
    }
}

fn main() -> ExitCode {
    run_experiment(
        "perf_mc",
        "Deterministic parallel Monte-Carlo: validation, invariance, bit-sliced speedup, and the regime past k*t = 30",
        "DESIGN.md sections 4.6 and 4.8 (stream splitting, Wilson intervals, lane words, verdict plans); Lemma B.1",
        |eng, rep| {
            let threads = eng.threads();
            let (samples_override, seed_override) = eng.mc_overrides();
            let perf_samples = samples_override.unwrap_or(PERF_SAMPLES);
            let perf_seed = seed_override.unwrap_or(7);
            let mut stats = McStats::default();

            let mut table = Table::new(vec![
                "task", "sizes", "t", "exact", "mc", "ci_lo", "ci_hi", "consistent",
            ]);
            let points = cross_validation(eng, &mut table, &mut stats);
            let section = rep.section("cross-validation against exact enumeration");
            section.table(table);
            section.note(format!(
                "{points} grid points, {VALIDATION_SAMPLES} samples each: the exact value \
                 is asserted inside the z = 4 Wilson interval in-process"
            ));

            let mut table = Table::new(vec![
                "task",
                "sizes",
                "t",
                "threads",
                "solved/samples",
                "bit_identical",
            ]);
            thread_invariance(&mut table);
            let section = rep.section("thread-count invariance");
            section.table(table);
            section.note(
                "sample i always draws from StreamRng(seed, i); workers shard contiguous \
                 index ranges and merge integer counts - the estimate is asserted \
                 bit-identical for threads in {1, 2, 4, 8}",
            );

            let mut table = Table::new(vec![
                "task",
                "sizes",
                "t",
                "k*t",
                "ref_ms",
                "kernel_ms",
                "parallel_ms",
                "bitsliced_ms",
                "parallel_speedup",
                "bitsliced_speedup",
            ]);
            let (min_speedup, min_bitsliced) =
                performance(&mut table, threads, perf_samples, perf_seed);
            let section =
                rep.section("sampling kernel: reference vs kernel vs parallel vs bit-sliced");
            section.table(table);
            section.note(
                "reference = Realization + full Execution trace + consistency partition \
                 per sample; kernel = RoundStepper + partition memo, allocation-free, \
                 stops at the first solving round (monotonicity); bit-sliced = 64 samples \
                 per u64 lane word, verdicts from a compiled VerdictPlan",
            );
            section.note(format!(
                "minimum parallel-kernel speedup over the serial reference: \
                 {min_speedup:.1}x; minimum bit-sliced speedup over the parallel \
                 kernel: {min_bitsliced:.1}x (acceptance floors 5x each; worker \
                 threads: {threads})"
            ));

            let mut table = Table::new(vec![
                "task",
                "sizes",
                "t",
                "samples",
                "threads",
                "solved/samples",
                "bit_identical",
            ]);
            bitsliced_identity(&mut table, perf_samples, perf_seed, &mut stats);
            let section = rep.section("lane bit-identity across threads and lane fills");
            section.table(table);
            section.note(
                "lane l of word w is exactly stream w*64 + l, so the bit-sliced \
                 estimate (and the whole series) is asserted bit-identical to \
                 monte_carlo_parallel for threads in {1, 2, 4, 8} and sample counts \
                 off the 64-lane word boundary",
            );

            for n in [16usize, 24] {
                let rows = eng.sweep(&scenario_spec(n));
                assert!(!rows.is_empty());
                assert!(
                    rows.iter()
                        .all(|r| r.mode == RowMode::Mc && r.k * r.series.len() > TREE_EXACT_BITS),
                    "every scenario row must live past the exact wall"
                );
                assert!(
                    rows.iter().all(|r| r.is_monotone()),
                    "common-random-numbers series must be monotone"
                );
                let section = rep.section(format!(
                    "beyond the exact wall: n = {n}, two-source profiles, t <= 32"
                ));
                section.sweep(format!("mc series at n = {n}"), rows);
                section.note(format!(
                    "k*t reaches 64 > TREE_EXACT_BITS = {TREE_EXACT_BITS}: past \
                     tree-enumeration reach (4096 samples per row, one sampling pass \
                     per series); the quotient DP engine covers this regime exactly \
                     since the k*t <= 126 budget landed — see exp_perf_quotient"
                ));
            }

            let mut table = Table::new(vec![
                "task", "sizes", "t", "k*t", "samples", "p", "ci_lo", "ci_hi",
            ]);
            adaptive_marquee(&mut table, threads, &mut stats);
            let section = rep.section("adaptive stopping at n = 24, t = 32");
            section.table(table);
            section.note(
                "batches of 8192 until the 95% Wilson half-width is <= 5e-3 (cap 2^18); \
                 the sample count is a pure function of the spec, so the estimate stays \
                 deterministic and thread-invariant",
            );
            section.note(
                "the zero-one law pins p(32) to an extreme, so these rows are exactly \
                 the p = 1 edge where the old std_error check was vacuous - the Wilson \
                 upper/lower bounds stay finite and informative",
            );

            let sweep_stats = eng.mc_stats();
            stats.merge(&sweep_stats);
            assert!(
                stats.closed_form_verdicts > 0,
                "acceptance: the closed-form path must be exercised in MC mode"
            );
            assert_eq!(
                stats.dense_scan_verdicts, 0,
                "built-in tasks must never fall back to the dense scan"
            );
            assert!(
                stats.lane_words > 0,
                "acceptance: the bit-sliced lane path must be exercised in MC mode"
            );
            assert_eq!(
                stats.peeled_lanes, 0,
                "built-in tasks compile lane plans; no sample may peel to the \
                 scalar path"
            );
            rep.section("verdict-path counters").note(format!(
                "closed_form_verdicts={} dense_scan_verdicts={} memo_hits={} \
                 lane_words={} peeled_lanes={} \
                 (scalar Monte-Carlo verdicts in this run went closed-form-first, \
                 lane verdicts came from compiled plans; the dense fallback and the \
                 peel path are reserved for tasks without a closed form or plan)",
                stats.closed_form_verdicts,
                stats.dense_scan_verdicts,
                stats.memo_hits,
                stats.lane_words,
                stats.peeled_lanes
            ));
        },
    )
}
