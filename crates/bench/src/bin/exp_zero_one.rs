//! Experiment `lem32` — Lemma 3.2 / Kolmogorov zero-one law: for every
//! configuration, `Pr[P(t) solves O | α]` is monotone in `t` and its limit
//! is 0 or 1 — never anything in between.

use rsbt_bench::{banner, fmt_p, fmt_sizes, Table};
use rsbt_core::{eventual, probability};
use rsbt_random::Assignment;
use rsbt_sim::Model;
use rsbt_tasks::{KLeaderElection, LeaderElection, Task};

fn run_task<T: Task>(task: &T, table: &mut Table, monotone_ok: &mut bool) {
    for n in 2..=5usize {
        for alpha in Assignment::enumerate_profiles(n) {
            let t_max = 4.min(16 / alpha.k().max(1)).max(1);
            let series = probability::exact_series(&Model::Blackboard, task, &alpha, t_max);
            let monotone = series.windows(2).all(|w| w[1] >= w[0] - 1e-12);
            *monotone_ok &= monotone;
            let limit = eventual::lemma_3_2_limit(&series);
            table.row(vec![
                task.name(),
                fmt_sizes(&alpha.group_sizes()),
                series
                    .iter()
                    .map(|p| fmt_p(*p))
                    .collect::<Vec<_>>()
                    .join(" "),
                monotone.to_string(),
                format!("{limit:?}"),
            ]);
        }
    }
}

fn main() {
    banner(
        "Lemma 3.2: zero-one law for eventual solvability",
        "Fraigniaud-Gelles-Lotker 2021, Lemma 3.2 (Section 3.2)",
    );
    let mut table = Table::new(vec!["task", "sizes", "p(1..t)", "monotone", "limit"]);
    let mut monotone_ok = true;
    run_task(&LeaderElection, &mut table, &mut monotone_ok);
    run_task(&KLeaderElection::new(2), &mut table, &mut monotone_ok);
    println!("{table}");
    println!("paper: every series is monotone and its limit classifies as Zero or One");
    println!("(positive probability at any t forces limit 1). monotone_ok = {monotone_ok}");
}
