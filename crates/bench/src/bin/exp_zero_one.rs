//! Experiment `lem32` — Lemma 3.2 / Kolmogorov zero-one law: for every
//! configuration, `Pr[P(t) solves O | α]` is monotone in `t` and its limit
//! is 0 or 1 — never anything in between.

use std::process::ExitCode;

use rsbt_bench::{run_experiment, SweepSpec, TaskSpec};
use rsbt_tasks::{KLeaderElection, LeaderElection};

fn main() -> ExitCode {
    run_experiment(
        "zero_one",
        "Lemma 3.2: zero-one law for eventual solvability",
        "Fraigniaud-Gelles-Lotker 2021, Lemma 3.2 (Section 3.2)",
        |eng, rep| {
            let spec = SweepSpec::new()
                .task(TaskSpec::fixed(LeaderElection))
                .task(TaskSpec::fixed(KLeaderElection::new(2)))
                .nodes(2..=5)
                .t_cap(4)
                .bit_budget(16);
            let rows = eng.sweep(&spec);
            let monotone_ok = rows.iter().all(|r| r.is_monotone());
            let section = rep.section("p(1..t) series over all profiles");
            section.sweep("zero-one law", rows);
            section.note("paper: every series is monotone and its limit classifies as Zero or One");
            section.note(format!(
                "(positive probability at any t forces limit 1). monotone_ok = {monotone_ok}"
            ));
        },
    )
}
