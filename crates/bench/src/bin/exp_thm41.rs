//! Experiment `thm41` — Theorem 4.1: blackboard leader election is
//! eventually solvable iff some source feeds exactly one node.
//!
//! Three sections:
//! 1. the solvability table over every group-size profile of `n ≤ 6`
//!    nodes (exact `p(t)` vs the `∃ n_i = 1` predicate);
//! 2. the convergence series `p(t)` against the paper's closed forms
//!    (`S_1` probability and the `1 − (k−1)/2^t` lower bound);
//! 3. a Monte-Carlo cross-check of the exact enumerator.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsbt_bench::{banner, fmt_p, fmt_sizes, Table};
use rsbt_core::{bounds, eventual, probability};
use rsbt_random::Assignment;
use rsbt_sim::Model;
use rsbt_tasks::LeaderElection;

fn main() {
    banner(
        "Theorem 4.1: blackboard leader election ⟺ ∃ i: n_i = 1",
        "Fraigniaud-Gelles-Lotker 2021, Theorem 4.1 (Section 4.1)",
    );

    // Section 1: solvability over all profiles of n ≤ 6.
    let mut table = Table::new(vec![
        "sizes",
        "∃ n_i=1",
        "p(1)",
        "p(2)",
        "p(3)",
        "limit",
        "matches thm",
    ]);
    let mut all_match = true;
    for n in 1..=6usize {
        for alpha in Assignment::enumerate_profiles(n) {
            let sizes = alpha.group_sizes();
            // Keep exact enumeration feasible: k·t ≤ 18.
            let t_max = 3.min(18 / alpha.k().max(1));
            let series =
                probability::exact_series(&Model::Blackboard, &LeaderElection, &alpha, t_max);
            let predicted = eventual::blackboard_eventually_solvable(&alpha);
            let limit = eventual::lemma_3_2_limit(&series);
            let observed_solvable = limit == eventual::LimitClass::One;
            let matches = observed_solvable == predicted;
            all_match &= matches;
            let p_at = |t: usize| {
                series
                    .get(t - 1)
                    .map(|p| fmt_p(*p))
                    .unwrap_or_else(|| "-".into())
            };
            table.row(vec![
                fmt_sizes(&sizes),
                predicted.to_string(),
                p_at(1),
                p_at(2),
                p_at(3),
                format!("{limit:?}"),
                matches.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!("paper: limit is One exactly when ∃ n_i = 1; every row must match. all_match = {all_match}\n");

    // Section 2: convergence vs closed forms for sizes [1, 2, 2] (k = 3).
    let alpha = Assignment::from_group_sizes(&[1, 2, 2]).unwrap();
    let k = alpha.k();
    let mut series = Table::new(vec![
        "t",
        "exact p(t)",
        "S1 closed form",
        "1-(k-1)/2^t bound",
    ]);
    for t in 1..=6usize {
        let exact = probability::exact(&Model::Blackboard, &LeaderElection, &alpha, t);
        series.row(vec![
            t.to_string(),
            fmt_p(exact),
            fmt_p(bounds::s1_probability(k, t)),
            fmt_p(bounds::theorem_4_1_lower_bound(k, t)),
        ]);
    }
    println!("convergence for sizes [1,2,2] (k = 3):");
    println!("{series}");
    println!("paper: exact ≥ S1 ≥ bound; all three approach 1.\n");

    // Section 3: Monte-Carlo cross-check.
    let mut rng = StdRng::seed_from_u64(2021);
    let mut mc = Table::new(vec!["sizes", "t", "exact", "monte-carlo", "|Δ|/stderr"]);
    for sizes in [vec![1usize, 1], vec![1, 2], vec![1, 2, 2], vec![2, 2]] {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        let t = 4;
        let exact = probability::exact(&Model::Blackboard, &LeaderElection, &alpha, t);
        let est = probability::monte_carlo(
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            t,
            50_000,
            &mut rng,
        );
        let z = if est.std_error > 0.0 {
            (est.p - exact).abs() / est.std_error
        } else {
            0.0
        };
        mc.row(vec![
            fmt_sizes(&sizes),
            t.to_string(),
            fmt_p(exact),
            fmt_p(est.p),
            format!("{z:.2}"),
        ]);
    }
    println!("Monte-Carlo cross-check (50k samples):");
    println!("{mc}");
}
