//! Experiment `thm41` — Theorem 4.1: blackboard leader election is
//! eventually solvable iff some source feeds exactly one node.
//!
//! Three sections:
//! 1. the solvability sweep over every group-size profile of `n ≤ 6`
//!    nodes (exact `p(t)` vs the `∃ n_i = 1` predicate);
//! 2. the convergence series `p(t)` against the paper's closed forms
//!    (`S_1` probability and the `1 − (k−1)/2^t` lower bound);
//! 3. a Monte-Carlo cross-check of the exact enumerator.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsbt_bench::{fmt_p, fmt_sizes, run_experiment, SweepSpec, Table, TaskSpec};
use rsbt_core::{bounds, eventual, probability};
use rsbt_random::Assignment;
use rsbt_sim::Model;
use rsbt_tasks::LeaderElection;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_experiment(
        "thm41",
        "Theorem 4.1: blackboard leader election ⟺ ∃ i: n_i = 1",
        "Fraigniaud-Gelles-Lotker 2021, Theorem 4.1 (Section 4.1)",
        |eng, rep| {
            // Section 1: solvability over all profiles of n ≤ 6
            // (bit budget 18 keeps exact enumeration feasible: k·t ≤ 18).
            let spec = SweepSpec::new()
                .task(TaskSpec::fixed(LeaderElection))
                .nodes(1..=6)
                .t_cap(3)
                .bit_budget(18)
                .predicate(eventual::blackboard_eventually_solvable);
            let rows = eng.sweep(&spec);
            let all_match = rows.iter().all(|r| r.matches == Some(true));
            let section = rep.section("solvability sweep (predicted = ∃ n_i = 1)");
            section.sweep("theorem 4.1", rows);
            section.note(format!(
                "paper: limit is One exactly when ∃ n_i = 1; every row must match. \
                 all_match = {all_match}"
            ));

            // Section 2: convergence vs closed forms for sizes [1, 2, 2].
            let alpha = Assignment::from_group_sizes(&[1, 2, 2]).unwrap();
            let k = alpha.k();
            let series = eng.exact_series(&Model::Blackboard, &LeaderElection, &alpha, 6);
            let mut table = Table::new(vec![
                "t",
                "exact p(t)",
                "S1 closed form",
                "1-(k-1)/2^t bound",
            ]);
            for (i, &exact) in series.iter().enumerate() {
                let t = i + 1;
                table.row(vec![
                    t.to_string(),
                    fmt_p(exact),
                    fmt_p(bounds::s1_probability(k, t)),
                    fmt_p(bounds::theorem_4_1_lower_bound(k, t)),
                ]);
            }
            let conv = rep.section("convergence for sizes [1,2,2] (k = 3)");
            conv.table(table);
            conv.note("paper: exact ≥ S1 ≥ bound; all three approach 1.");

            // Section 3: Monte-Carlo cross-check. Consistency is judged
            // against the Wilson score interval: the old z-score column
            // was vacuous on the [2,2] row, where p̂ = 0 makes std_error
            // exactly 0 and |Δ|/stderr degenerates to 0-or-∞.
            let mut rng = StdRng::seed_from_u64(2021);
            let mut mc = Table::new(vec![
                "sizes",
                "t",
                "exact",
                "monte-carlo",
                "wilson 99.99% lo",
                "wilson 99.99% hi",
                "consistent",
            ]);
            let mut all_consistent = true;
            for sizes in [vec![1usize, 1], vec![1, 2], vec![1, 2, 2], vec![2, 2]] {
                let alpha = Assignment::from_group_sizes(&sizes).unwrap();
                let t = 4;
                let exact = eng.exact(&Model::Blackboard, &LeaderElection, &alpha, t);
                let est = probability::monte_carlo(
                    &Model::Blackboard,
                    &LeaderElection,
                    &alpha,
                    t,
                    50_000,
                    &mut rng,
                );
                let (lo, hi) = est.wilson(4.0);
                let consistent = est.is_consistent_with(exact, 4.0);
                all_consistent &= consistent;
                mc.row(vec![
                    fmt_sizes(&sizes),
                    t.to_string(),
                    fmt_p(exact),
                    fmt_p(est.p),
                    fmt_p(lo),
                    fmt_p(hi),
                    consistent.to_string(),
                ]);
            }
            assert!(
                all_consistent,
                "every exact value must fall inside its Wilson interval"
            );
            let section = rep.section("Monte-Carlo cross-check (50k samples)");
            section.table(mc);
            section.note(
                "consistency = exact value inside the z = 4 Wilson interval; informative \
                 even on the p = 0 row [2,2], where the old std_error check was vacuous",
            );
        },
    )
}
