//! Experiment `perf_solv` — the solvability kernel three ways on
//! facet-heavy tasks: the pre-dense reference (`solves_execution_reference`,
//! which rebuilds the output complex and scans it with per-vertex
//! binary-search lookups on every call) versus the dense
//! [`FacetTable`](rsbt_complex::FacetTable) scan versus the closed-form
//! partition verdicts ([`Task::solves_partition`]).
//!
//! All three paths are asserted to agree on every sampled consistency
//! partition before any timing is reported, the `k·t = 16`
//! engine-vs-reference acceptance point is asserted bit-identical
//! in-process, and the engine's memo counters prove the closed-form path
//! is the one production actually exercises.

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use rsbt_bench::{run_experiment, Table};
use rsbt_core::engine::{self, SolvabilityMemo, TaskKernel};
use rsbt_core::output_cache::{build_output_table, OutputComplexCache};
use rsbt_core::{probability, solvability};
use rsbt_random::{Assignment, BitString, Realization};
use rsbt_sim::{Execution, KnowledgeArena, Model};
use rsbt_tasks::{FacetStream, KLeaderElection, Task, WeakSymmetryBreaking};

/// Delegating wrapper that hides a task's closed form, so the production
/// path falls back to the dense facet scan (the middle rung we time).
struct ScanOnly<T: Task>(T);

impl<T: Task> Task for ScanOnly<T> {
    fn name(&self) -> std::borrow::Cow<'static, str> {
        std::borrow::Cow::Owned(format!("scan-only[{}]", self.0.name()))
    }

    fn output_complex(&self, n: usize) -> rsbt_complex::Complex<u64> {
        self.0.output_complex(n)
    }

    fn facet_stream(&self, n: usize) -> FacetStream<'_> {
        self.0.facet_stream(n)
    }
    // No `solves_partition` override: the default `None` forces the scan.
}

/// Deterministic partition workload for `n` nodes: forced edge cases
/// (one class, all singletons, balanced halves) plus LCG-generated label
/// vectors with varying class-count caps.
fn partitions(n: usize, count: usize) -> Vec<Vec<u8>> {
    let mut out = vec![
        vec![0u8; n],
        (0..n as u8).collect(),
        (0..n).map(|i| (i % 2) as u8).collect(),
        (0..n).map(|i| (i * 2 / n) as u8).collect(),
    ];
    let mut state = 0x5253_4254_u64; // "RSBT"
    while out.len() < count {
        let cap = 2 + (state >> 7) as usize % (n - 1);
        let labels: Vec<u8> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as usize % cap) as u8
            })
            .collect();
        out.push(labels);
    }
    out.truncate(count);
    out
}

/// Builds one blackboard execution per partition whose final-time
/// consistency partition is exactly the given label partition (nodes with
/// equal labels share a bit string, so they share knowledge; distinct
/// strings give distinct knowledge).
fn executions_for(partitions: &[Vec<u8>], arena: &mut KnowledgeArena) -> Vec<Execution> {
    partitions
        .iter()
        .map(|labels| {
            let strings: Vec<BitString> = labels
                .iter()
                .map(|&l| BitString::from_bits((0..4).map(|b| l >> b & 1 == 1)))
                .collect();
            let rho = Realization::new(strings).expect("uniform length");
            Execution::run(&Model::Blackboard, &rho, arena)
        })
        .collect()
}

/// Average per-verdict time in microseconds over `reps` passes of the
/// whole execution batch.
fn time_verdicts<F: FnMut(&Execution) -> bool>(
    execs: &[Execution],
    reps: usize,
    mut verdict: F,
) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        for exec in execs {
            black_box(verdict(exec));
        }
    }
    start.elapsed().as_secs_f64() * 1e6 / (reps * execs.len()) as f64
}

fn verdict_comparison(table: &mut Table) -> (f64, f64) {
    // Facet-heavy grid, n ≥ 6 throughout: C(8,3) = 56, C(10,4) = 210,
    // 2^8 − 2 = 254, 2^10 − 2 = 1022 facets.
    let grid: Vec<(Box<dyn Task>, usize, usize)> = vec![
        (Box::new(KLeaderElection::new(3)), 8, 48),
        (Box::new(KLeaderElection::new(4)), 10, 48),
        (Box::new(WeakSymmetryBreaking), 8, 48),
        (Box::new(WeakSymmetryBreaking), 10, 48),
    ];
    let mut min_dense = f64::INFINITY;
    let mut min_closed = f64::INFINITY;
    for (task, n, verdicts) in grid {
        let parts = partitions(n, verdicts);
        let mut arena = KnowledgeArena::new();
        let execs = executions_for(&parts, &mut arena);
        let facets = build_output_table(task.as_ref(), n).facet_count();

        // Agreement first: all three paths, every sampled partition.
        let scan_only = ScanOnly(CloneByStream(task.as_ref()));
        let mut cache = OutputComplexCache::new();
        for exec in &execs {
            let reference = solvability::solves_execution_reference(exec, task.as_ref());
            let closed = solvability::solves_execution(exec, task.as_ref());
            let dense = solvability::solves_execution_with_cache(exec, &scan_only, &mut cache);
            assert_eq!(
                reference,
                closed,
                "{} n={n}: closed form diverged",
                task.name()
            );
            assert_eq!(
                reference,
                dense,
                "{} n={n}: dense scan diverged",
                task.name()
            );
        }

        let ref_us = time_verdicts(&execs, 1, |exec| {
            solvability::solves_execution_reference(exec, task.as_ref())
        });
        let dense_us = time_verdicts(&execs, 50, |exec| {
            solvability::solves_execution_with_cache(exec, &scan_only, &mut cache)
        });
        let closed_us = time_verdicts(&execs, 500, |exec| {
            solvability::solves_execution(exec, task.as_ref())
        });
        let dense_speedup = ref_us / dense_us.max(1e-6);
        let closed_speedup = ref_us / closed_us.max(1e-6);
        min_dense = min_dense.min(dense_speedup);
        min_closed = min_closed.min(closed_speedup);
        table.row(vec![
            task.name().into_owned(),
            n.to_string(),
            facets.to_string(),
            execs.len().to_string(),
            format!("{ref_us:.1}"),
            format!("{dense_us:.2}"),
            format!("{closed_us:.3}"),
            format!("{dense_speedup:.0}"),
            format!("{closed_speedup:.0}"),
        ]);
    }
    assert!(
        min_dense >= 5.0 && min_closed >= 5.0,
        "acceptance: >= 5x over the reference on every grid point \
         (dense {min_dense:.1}x, closed {min_closed:.1}x)"
    );
    (min_dense, min_closed)
}

/// A borrowing `Task` adaptor so `ScanOnly` can wrap a `&dyn Task` (the
/// grid stores boxed tasks).
struct CloneByStream<'a>(&'a dyn Task);

impl Task for CloneByStream<'_> {
    fn name(&self) -> std::borrow::Cow<'static, str> {
        std::borrow::Cow::Owned(self.0.name().into_owned())
    }

    fn output_complex(&self, n: usize) -> rsbt_complex::Complex<u64> {
        self.0.output_complex(n)
    }

    fn facet_stream(&self, n: usize) -> FacetStream<'_> {
        self.0.facet_stream(n)
    }

    fn solves_partition(&self, labels: &[u8]) -> Option<bool> {
        self.0.solves_partition(labels)
    }
}

/// The `k·t = 16` acceptance point plus memo counters: the engine (closed
/// form inside the partition memo) must reproduce the PR 3 reference
/// bit-for-bit, and the closed-form counter must be the non-zero one.
fn engine_integration(table: &mut Table) -> (u64, u64) {
    let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
    let t_max = 8; // k = 2 → k·t = 16
    let mut closed_total = 0u64;
    let mut dense_total = 0u64;
    for task in [
        Box::new(KLeaderElection::new(2)) as Box<dyn Task + Send + Sync>,
        Box::new(WeakSymmetryBreaking),
    ] {
        let reference = probability::exact_series_reference(
            &Model::Blackboard,
            task.as_ref(),
            &alpha,
            t_max,
            &mut KnowledgeArena::new(),
        );
        let engine_series =
            probability::exact_series(&Model::Blackboard, task.as_ref(), &alpha, t_max);
        assert!(
            reference
                .iter()
                .zip(&engine_series)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "engine diverged from reference at k*t = 16 for {}",
            task.name()
        );
        // Re-run the traversal with an owned memo to read its counters.
        let output_table = build_output_table(task.as_ref(), alpha.n());
        let kernel = TaskKernel::new(task.as_ref(), &output_table);
        let mut memo = SolvabilityMemo::new();
        let counts = engine::solved_counts_shard(
            &Model::Blackboard,
            &kernel,
            &alpha,
            t_max,
            0,
            0,
            1,
            &mut KnowledgeArena::new(),
            &mut memo,
        );
        assert_eq!(
            // u128 like the probability-side tally divisions: the shard
            // engine's k*t <= 62 assert bounds the count, but the
            // denominator shift must not be what pins the wall.
            counts[t_max - 1] as f64 / (1u128 << (alpha.k() * t_max)) as f64,
            *engine_series.last().unwrap(),
            "shard traversal reproduces the series tail"
        );
        closed_total += memo.closed_form_verdicts();
        dense_total += memo.dense_scan_verdicts();
        table.row(vec![
            task.name().into_owned(),
            "[2,2]".into(),
            t_max.to_string(),
            "16".into(),
            memo.entries().to_string(),
            memo.memo_hits().to_string(),
            memo.closed_form_verdicts().to_string(),
            memo.dense_scan_verdicts().to_string(),
            "true".into(),
        ]);
    }
    assert!(
        closed_total > 0,
        "acceptance: the closed-form path must be exercised"
    );
    assert_eq!(
        dense_total, 0,
        "built-in tasks must never fall back to the dense scan"
    );
    (closed_total, dense_total)
}

fn main() -> ExitCode {
    run_experiment(
        "perf_solv",
        "Solvability kernel: reference vs dense facet table vs closed form",
        "DESIGN.md section 4.5 (FacetTable, partition verdicts); Definition 3.4",
        |_eng, rep| {
            let mut table = Table::new(vec![
                "task",
                "n",
                "facets",
                "verdicts",
                "ref_us",
                "dense_us",
                "closed_us",
                "dense_speedup",
                "closed_speedup",
            ]);
            let (min_dense, min_closed) = verdict_comparison(&mut table);
            let section = rep.section("solvability verdict: reference vs dense vs closed form");
            section.table(table);
            section.note(
                "reference = solves_execution_reference: rebuild output_complex (BTreeSet \
                 maximality maintenance) + facet scan with per-vertex binary search, per verdict",
            );
            section.note(
                "dense = cached FacetTable scan (O(1) lookups, one u32 compare per cell); \
                 closed = Task::solves_partition on the consistency partition alone",
            );
            section.note(format!(
                "verdicts agree on every sampled partition; minimum speedup over reference: \
                 dense {min_dense:.0}x, closed-form {min_closed:.0}x (acceptance floor 5x)"
            ));

            let mut engine_table = Table::new(vec![
                "task",
                "sizes",
                "t_max",
                "bits",
                "memo_entries",
                "memo_hits",
                "closed_form_verdicts",
                "dense_scan_verdicts",
                "bit_identical",
            ]);
            let (closed_total, dense_total) = engine_integration(&mut engine_table);
            let section = rep.section("engine integration at k*t = 16");
            section.table(engine_table);
            section.note(
                "exact_series (engine + memo) asserted bit-identical to \
                 exact_series_reference at the k*t = 16 acceptance point, both tasks",
            );
            section.note(format!(
                "closed_form_verdicts={closed_total} dense_scan_verdicts={dense_total} \
                 (non-zero closed-form counter: the production engine answers partitions \
                 in closed form; the dense scan is reserved for tasks without one)"
            ));
        },
    )
}
