//! Structured experiment reports: human-readable text and a stable,
//! machine-readable JSON schema (`rsbt-bench-report/v2`, with a
//! v1-compat validation path for pre-estimator baselines).
//!
//! Every `exp_*` binary builds a [`Report`] through the sweep-engine
//! harness ([`crate::run_experiment`]); `--json <path>` serializes it. The
//! JSON layer is self-contained (emitter, parser, and schema validator)
//! because the workspace is fully offline — no serde. The emitter is
//! deterministic: object keys keep insertion order and floats are written
//! in shortest round-trip form, so committed `BENCH_*.json` baselines diff
//! cleanly across PRs.
//!
//! **v2 over v1**: sweep rows carry a `mode` field (`"exact"`,
//! `"exact-dp"` for exact rows past the tree-engine wall that only the
//! quotient DP engine reaches, or `"mc"`), and Monte-Carlo rows add
//! `samples`, `seed`, `ci_lo`, and
//! `ci_hi` (per-`t` Wilson bounds parallel to `series`). v1 documents —
//! exact-only rows, no `mode` — still [`validate`] (the parser never
//! depended on the schema tag), so earlier committed baselines remain
//! readable.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::sweep::SweepRow;
use crate::Table;

/// The identifier every freshly-written report carries in its `schema`
/// field.
pub const SCHEMA: &str = "rsbt-bench-report/v2";

/// The pre-estimator schema identifier; [`validate`] still accepts it
/// (exact-only rows) so committed v1 baselines stay parseable.
pub const SCHEMA_V1: &str = "rsbt-bench-report/v1";

/// A JSON value with deterministic (insertion-ordered) objects.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float (emitted with a decimal point or exponent; non-finite
    /// values emit as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object literal.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.map(|(k, v)| (k.to_string(), v)).to_vec())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this value is a number (integer or float).
    pub fn is_number(&self) -> bool {
        matches!(self, Json::Int(_) | Json::Num(_))
    }

    /// The numeric payload as `f64` (integers widen), if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.emit(&mut out, 0);
        out.push('\n');
        out
    }

    fn emit(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(v) => {
                if !v.is_finite() {
                    out.push_str("null");
                } else {
                    let s = format!("{v}");
                    out.push_str(&s);
                    // Keep floats distinguishable from integers so the
                    // emit→parse round trip is the identity.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                }
            }
            Json::Str(s) => emit_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.emit(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    emit_string(out, k);
                    out.push_str(": ");
                    v.emit(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict: one value, only whitespace after).
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn emit_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs are not produced by our
                            // emitter; reject rather than mis-decode.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Consumes one or more ASCII digits; errors otherwise.
    fn digits(&mut self) -> Result<(), String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a digit at byte {start}"));
        }
        Ok(())
    }

    /// Strict JSON number grammar: `-? int frac? exp?` — no leading `+`,
    /// no bare trailing `.`, a signed exponent needs digits.
    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        self.digits()
            .map_err(|_| format!("expected a value at byte {start}"))?;
        let mut float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number '{text}': {e}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| format!("bad number '{text}': {e}"))
        }
    }
}

/// One item of a report section.
#[derive(Clone, Debug)]
enum Item {
    Table(Table),
    Note(String),
    Sweep { label: String, rows: Vec<SweepRow> },
}

/// A titled group of tables, notes, and sweep results.
#[derive(Clone, Debug)]
pub struct Section {
    title: String,
    items: Vec<Item>,
}

impl Section {
    /// Appends a fixed-width table.
    pub fn table(&mut self, table: Table) -> &mut Self {
        self.items.push(Item::Table(table));
        self
    }

    /// Appends a free-form note line (one paragraph of reading guidance).
    pub fn note<S: Into<String>>(&mut self, note: S) -> &mut Self {
        self.items.push(Item::Note(note.into()));
        self
    }

    /// Appends structured sweep rows. Rendered as the standard sweep table
    /// in text and as typed objects (not stringly cells) in JSON.
    pub fn sweep<S: Into<String>>(&mut self, label: S, rows: Vec<SweepRow>) -> &mut Self {
        self.items.push(Item::Sweep {
            label: label.into(),
            rows,
        });
        self
    }
}

/// A complete experiment report.
#[derive(Clone, Debug)]
pub struct Report {
    experiment: String,
    title: String,
    paper_ref: String,
    threads: usize,
    elapsed_ms: Option<u64>,
    cache: Option<(u64, u64, usize)>,
    sections: Vec<Section>,
}

impl Report {
    /// Creates an empty report for the named experiment.
    pub fn new<S1: Into<String>, S2: Into<String>, S3: Into<String>>(
        experiment: S1,
        title: S2,
        paper_ref: S3,
    ) -> Self {
        Report {
            experiment: experiment.into(),
            title: title.into(),
            paper_ref: paper_ref.into(),
            threads: 1,
            elapsed_ms: None,
            cache: None,
            sections: Vec::new(),
        }
    }

    /// Starts (and returns) a new section.
    pub fn section<S: Into<String>>(&mut self, title: S) -> &mut Section {
        self.sections.push(Section {
            title: title.into(),
            items: Vec::new(),
        });
        self.sections.last_mut().expect("just pushed")
    }

    /// Records the worker-thread count used (harness bookkeeping).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Records wall-clock duration (harness bookkeeping).
    pub fn set_elapsed_ms(&mut self, ms: u64) {
        self.elapsed_ms = Some(ms);
    }

    /// Records probability-cache statistics (harness bookkeeping).
    pub fn set_cache_stats(&mut self, hits: u64, misses: u64, points: usize) {
        self.cache = Some((hits, misses, points));
    }

    /// Renders the human-readable form (what the binary prints).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", self.title);
        let _ = writeln!(out, "paper reference: {}", self.paper_ref);
        for section in &self.sections {
            let _ = writeln!(out);
            if !section.title.is_empty() {
                let _ = writeln!(out, "-- {} --", section.title);
            }
            for item in &section.items {
                match item {
                    Item::Table(t) => {
                        let _ = write!(out, "{t}");
                    }
                    Item::Note(n) => {
                        let _ = writeln!(out, "{n}");
                    }
                    Item::Sweep { rows, .. } => {
                        let _ = write!(out, "{}", crate::sweep::standard_table(rows));
                    }
                }
            }
        }
        out
    }

    /// Serializes to the `rsbt-bench-report/v1` JSON document.
    pub fn to_json(&self) -> Json {
        let mut top = vec![
            ("schema".to_string(), Json::Str(SCHEMA.into())),
            ("experiment".to_string(), Json::Str(self.experiment.clone())),
            ("title".to_string(), Json::Str(self.title.clone())),
            ("paper_ref".to_string(), Json::Str(self.paper_ref.clone())),
            ("threads".to_string(), Json::Int(self.threads as i64)),
        ];
        if let Some(ms) = self.elapsed_ms {
            top.push(("elapsed_ms".to_string(), Json::Int(ms as i64)));
        }
        if let Some((hits, misses, points)) = self.cache {
            top.push((
                "cache".to_string(),
                Json::obj([
                    ("hits", Json::Int(hits as i64)),
                    ("misses", Json::Int(misses as i64)),
                    ("points", Json::Int(points as i64)),
                ]),
            ));
        }
        let sections: Vec<Json> = self
            .sections
            .iter()
            .map(|s| {
                let mut tables = Vec::new();
                let mut notes = Vec::new();
                let mut sweeps = Vec::new();
                for item in &s.items {
                    match item {
                        Item::Table(t) => tables.push(table_json(t)),
                        Item::Note(n) => notes.push(Json::Str(n.clone())),
                        Item::Sweep { label, rows } => sweeps.push(Json::obj([
                            ("label", Json::Str(label.clone())),
                            (
                                "rows",
                                Json::Arr(rows.iter().map(SweepRow::to_json).collect()),
                            ),
                        ])),
                    }
                }
                Json::obj([
                    ("title", Json::Str(s.title.clone())),
                    ("tables", Json::Arr(tables)),
                    ("sweeps", Json::Arr(sweeps)),
                    ("notes", Json::Arr(notes)),
                ])
            })
            .collect();
        top.push(("sections".to_string(), Json::Arr(sections)));
        Json::Obj(top)
    }

    /// Validates and writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// I/O errors from the filesystem.
    ///
    /// # Panics
    ///
    /// Panics if the generated document fails its own schema validation —
    /// that is a bug in the report builder, never a user error.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        let json = self.to_json();
        validate(&json).expect("generated report must satisfy the v1 schema");
        std::fs::write(path, json.to_pretty_string())
    }
}

fn table_json(t: &Table) -> Json {
    Json::obj([
        (
            "columns",
            Json::Arr(t.headers().iter().map(|h| Json::Str(h.clone())).collect()),
        ),
        (
            "rows",
            Json::Arr(
                t.rows()
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(|c| Json::Str(c.clone())).collect()))
                    .collect(),
            ),
        ),
    ])
}

/// Validates a document against the `rsbt-bench-report/v2` schema (or
/// the v1 schema, for pre-estimator baselines: v1 rows must be
/// exact-only and may not carry estimator fields).
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate(doc: &Json) -> Result<(), String> {
    let need_str = |key: &str| -> Result<(), String> {
        match doc.get(key) {
            Some(Json::Str(_)) => Ok(()),
            _ => Err(format!("top-level '{key}' must be a string")),
        }
    };
    let v1 = match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => false,
        Some(s) if s == SCHEMA_V1 => true,
        _ => {
            return Err(format!(
                "schema field must be '{SCHEMA}' (or '{SCHEMA_V1}')"
            ))
        }
    };
    need_str("experiment")?;
    need_str("title")?;
    need_str("paper_ref")?;
    match doc.get("threads") {
        Some(Json::Int(t)) if *t >= 1 => {}
        _ => return Err("top-level 'threads' must be a positive integer".into()),
    }
    let sections = doc
        .get("sections")
        .and_then(Json::as_arr)
        .ok_or("top-level 'sections' must be an array")?;
    for (si, section) in sections.iter().enumerate() {
        let at = |msg: &str| format!("section {si}: {msg}");
        if !matches!(section.get("title"), Some(Json::Str(_))) {
            return Err(at("missing string 'title'"));
        }
        let tables = section
            .get("tables")
            .and_then(Json::as_arr)
            .ok_or_else(|| at("missing array 'tables'"))?;
        for table in tables {
            let columns = table
                .get("columns")
                .and_then(Json::as_arr)
                .ok_or_else(|| at("table missing 'columns'"))?;
            if !columns.iter().all(|c| matches!(c, Json::Str(_))) {
                return Err(at("table columns must be strings"));
            }
            let rows = table
                .get("rows")
                .and_then(Json::as_arr)
                .ok_or_else(|| at("table missing 'rows'"))?;
            for row in rows {
                let cells = row.as_arr().ok_or_else(|| at("table row must be array"))?;
                if cells.len() != columns.len() {
                    return Err(at("table row width must match columns"));
                }
                if !cells.iter().all(|c| matches!(c, Json::Str(_))) {
                    return Err(at("table cells must be strings"));
                }
            }
        }
        let sweeps = section
            .get("sweeps")
            .and_then(Json::as_arr)
            .ok_or_else(|| at("missing array 'sweeps'"))?;
        for sweep in sweeps {
            if !matches!(sweep.get("label"), Some(Json::Str(_))) {
                return Err(at("sweep missing string 'label'"));
            }
            let rows = sweep
                .get("rows")
                .and_then(Json::as_arr)
                .ok_or_else(|| at("sweep missing 'rows'"))?;
            for row in rows {
                validate_sweep_row(row, v1).map_err(|e| at(&e))?;
            }
        }
        let notes = section
            .get("notes")
            .and_then(Json::as_arr)
            .ok_or_else(|| at("missing array 'notes'"))?;
        if !notes.iter().all(|n| matches!(n, Json::Str(_))) {
            return Err(at("notes must be strings"));
        }
    }
    Ok(())
}

fn validate_sweep_row(row: &Json, v1: bool) -> Result<(), String> {
    for key in ["model", "task", "limit"] {
        if !matches!(row.get(key), Some(Json::Str(_))) {
            return Err(format!("sweep row missing string '{key}'"));
        }
    }
    let sizes = row
        .get("sizes")
        .and_then(Json::as_arr)
        .ok_or("sweep row missing 'sizes'")?;
    if !sizes.iter().all(|s| matches!(s, Json::Int(i) if *i >= 1)) {
        return Err("sweep row sizes must be positive integers".into());
    }
    for key in ["n", "k", "gcd"] {
        match row.get(key) {
            Some(Json::Int(i)) if *i >= 1 => {}
            _ => return Err(format!("sweep row '{key}' must be a positive integer")),
        }
    }
    let series = row
        .get("series")
        .and_then(Json::as_arr)
        .ok_or("sweep row missing 'series'")?;
    if !series.iter().all(Json::is_number) {
        return Err("sweep row series must be numbers".into());
    }
    for key in ["predicted", "matches"] {
        if let Some(v) = row.get(key) {
            if !matches!(v, Json::Bool(_) | Json::Null) {
                return Err(format!("sweep row '{key}' must be a boolean"));
            }
        }
    }
    // Fault-dimension rates (optional, emitted pairwise by the sweep).
    for key in ["crash", "omission"] {
        if let Some(v) = row.get(key) {
            match v.as_f64() {
                Some(p) if (0.0..=1.0).contains(&p) => {}
                _ => return Err(format!("sweep row '{key}' must be a rate in [0, 1]")),
            }
        }
    }
    if row.get("crash").is_some() != row.get("omission").is_some() {
        return Err("sweep row fault rates must come as a crash/omission pair".into());
    }
    // Estimator fields (v2): a `mode` discriminator on every row, and the
    // Monte-Carlo companion fields on `"mc"` rows only. v1 rows are
    // exact-only and must not carry any of them.
    let estimator_keys = ["mode", "samples", "seed", "ci_lo", "ci_hi"];
    if v1 {
        for key in estimator_keys {
            if row.get(key).is_some() {
                return Err(format!("v1 sweep row must not carry '{key}'"));
            }
        }
        return Ok(());
    }
    // "exact-dp" rows are exact-like: integer-count series from the
    // quotient DP engine past the tree wall — a provenance tag, not an
    // estimator, so they must not carry the Monte-Carlo companions.
    let mc = match row.get("mode").and_then(Json::as_str) {
        Some("exact") | Some("exact-dp") => false,
        Some("mc") => true,
        _ => return Err("v2 sweep row 'mode' must be \"exact\", \"exact-dp\", or \"mc\"".into()),
    };
    if !mc {
        for key in ["samples", "seed", "ci_lo", "ci_hi"] {
            if row.get(key).is_some() {
                return Err(format!("exact sweep row must not carry '{key}'"));
            }
        }
        return Ok(());
    }
    match row.get("samples") {
        Some(Json::Int(s)) if *s >= 1 => {}
        _ => return Err("mc sweep row 'samples' must be a positive integer".into()),
    }
    match row.get("seed").and_then(Json::as_str) {
        Some(seed) if seed.parse::<u64>().is_ok() => {}
        _ => return Err("mc sweep row 'seed' must be a u64 decimal string".into()),
    }
    for key in ["ci_lo", "ci_hi"] {
        let bounds = row
            .get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("mc sweep row missing '{key}'"))?;
        if bounds.len() != series.len() {
            return Err(format!("mc sweep row '{key}' must parallel 'series'"));
        }
        if !bounds.iter().all(Json::is_number) {
            return Err(format!("mc sweep row '{key}' must be numbers"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_round_trip_is_identity() {
        let doc = Json::obj([
            ("null", Json::Null),
            ("flag", Json::Bool(true)),
            ("int", Json::Int(-42)),
            ("whole_float", Json::Num(3.0)),
            ("frac", Json::Num(0.875)),
            ("text", Json::Str("quote \" slash \\ newline \n α".into())),
            (
                "arr",
                Json::Arr(vec![Json::Int(1), Json::Num(0.5), Json::Str("x".into())]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "\"open",
            "+5",
            "5.",
            ".5",
            "1e",
            "1e+",
            "-",
            "--1",
            "1.e3",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Spec-valid numbers still parse.
        assert_eq!(Json::parse("-0.5e+2").unwrap(), Json::Num(-50.0));
        assert_eq!(Json::parse("10").unwrap(), Json::Int(10));
    }

    #[test]
    fn floats_keep_their_type_through_round_trip() {
        let text = Json::Arr(vec![Json::Num(1.0), Json::Int(1)]).to_pretty_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, Json::Arr(vec![Json::Num(1.0), Json::Int(1)]));
    }

    #[test]
    fn report_json_validates_and_round_trips() {
        let mut report = Report::new("demo", "Demo experiment", "paper §0");
        report.set_threads(4);
        report.set_elapsed_ms(12);
        report.set_cache_stats(3, 7, 7);
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "x".into()]);
        report
            .section("first")
            .table(t)
            .note("reading guidance line");
        let json = report.to_json();
        validate(&json).unwrap();
        let round = Json::parse(&json.to_pretty_string()).unwrap();
        assert_eq!(round, json);
        let text = report.render_text();
        assert!(text.contains("=== Demo experiment ==="));
        assert!(text.contains("reading guidance line"));
    }

    fn mc_row() -> Json {
        Json::obj([
            ("model", Json::Str("blackboard".into())),
            ("task", Json::Str("leader-election".into())),
            ("sizes", Json::Arr(vec![Json::Int(1), Json::Int(15)])),
            ("n", Json::Int(16)),
            ("k", Json::Int(2)),
            ("gcd", Json::Int(1)),
            ("series", Json::Arr(vec![Json::Num(0.5), Json::Num(0.75)])),
            ("limit", Json::Str("One".into())),
            ("mode", Json::Str("mc".into())),
            ("samples", Json::Int(4096)),
            ("seed", Json::Str("18446744073709551615".into())),
            ("ci_lo", Json::Arr(vec![Json::Num(0.48), Json::Num(0.73)])),
            ("ci_hi", Json::Arr(vec![Json::Num(0.52), Json::Num(0.77)])),
        ])
    }

    fn doc_with_row(schema: &str, row: Json) -> Json {
        Json::obj([
            ("schema", Json::Str(schema.into())),
            ("experiment", Json::Str("demo".into())),
            ("title", Json::Str("t".into())),
            ("paper_ref", Json::Str("r".into())),
            ("threads", Json::Int(1)),
            (
                "sections",
                Json::Arr(vec![Json::obj([
                    ("title", Json::Str("s".into())),
                    ("tables", Json::Arr(vec![])),
                    (
                        "sweeps",
                        Json::Arr(vec![Json::obj([
                            ("label", Json::Str("l".into())),
                            ("rows", Json::Arr(vec![row])),
                        ])]),
                    ),
                    ("notes", Json::Arr(vec![])),
                ])]),
            ),
        ])
    }

    /// Strips the named keys from an object row.
    fn without(row: &Json, keys: &[&str]) -> Json {
        match row {
            Json::Obj(pairs) => Json::Obj(
                pairs
                    .iter()
                    .filter(|(k, _)| !keys.contains(&k.as_str()))
                    .cloned()
                    .collect(),
            ),
            other => other.clone(),
        }
    }

    #[test]
    fn v2_estimator_rows_validate() {
        validate(&doc_with_row(SCHEMA, mc_row())).unwrap();
        // Exact v2 rows: mode present, estimator companions absent.
        let exact = {
            let mut r = without(&mc_row(), &["samples", "seed", "ci_lo", "ci_hi"]);
            if let Json::Obj(pairs) = &mut r {
                for (k, v) in pairs.iter_mut() {
                    if k == "mode" {
                        *v = Json::Str("exact".into());
                    }
                }
            }
            r
        };
        validate(&doc_with_row(SCHEMA, exact)).unwrap();
    }

    #[test]
    fn v2_exact_dp_rows_are_exact_like() {
        // The quotient-engine tag: validates without estimator
        // companions, rejects them, and round-trips through the parser.
        let dp = {
            let mut r = without(&mc_row(), &["samples", "seed", "ci_lo", "ci_hi"]);
            if let Json::Obj(pairs) = &mut r {
                for (k, v) in pairs.iter_mut() {
                    if k == "mode" {
                        *v = Json::Str("exact-dp".into());
                    }
                }
            }
            r
        };
        let doc = doc_with_row(SCHEMA, dp);
        validate(&doc).unwrap();
        let round = Json::parse(&doc.to_pretty_string()).unwrap();
        assert_eq!(round, doc);
        validate(&round).unwrap();

        // exact-dp is a provenance tag, not an estimator: Monte-Carlo
        // companions are as illegal here as on plain exact rows.
        let mut bad = mc_row();
        if let Json::Obj(pairs) = &mut bad {
            for (k, v) in pairs.iter_mut() {
                if k == "mode" {
                    *v = Json::Str("exact-dp".into());
                }
            }
        }
        assert!(validate(&doc_with_row(SCHEMA, bad)).is_err());

        // Unknown mode strings are still rejected.
        let mut unknown = without(&mc_row(), &["samples", "seed", "ci_lo", "ci_hi"]);
        if let Json::Obj(pairs) = &mut unknown {
            for (k, v) in pairs.iter_mut() {
                if k == "mode" {
                    *v = Json::Str("exact-quotient".into());
                }
            }
        }
        let e = validate(&doc_with_row(SCHEMA, unknown));
        assert!(e.unwrap_err().contains("exact-dp"));
    }

    #[test]
    fn v2_rejects_malformed_estimator_rows() {
        // Missing mode.
        let e = validate(&doc_with_row(SCHEMA, without(&mc_row(), &["mode"])));
        assert!(e.unwrap_err().contains("mode"));
        // mc row without samples.
        let e = validate(&doc_with_row(SCHEMA, without(&mc_row(), &["samples"])));
        assert!(e.unwrap_err().contains("samples"));
        // ci bounds not parallel to the series.
        let mut ragged = mc_row();
        if let Json::Obj(pairs) = &mut ragged {
            for (k, v) in pairs.iter_mut() {
                if k == "ci_lo" {
                    *v = Json::Arr(vec![Json::Num(0.5)]);
                }
            }
        }
        let e = validate(&doc_with_row(SCHEMA, ragged));
        assert!(e.unwrap_err().contains("parallel"));
        // Exact row carrying estimator fields.
        let mut bad_exact = mc_row();
        if let Json::Obj(pairs) = &mut bad_exact {
            for (k, v) in pairs.iter_mut() {
                if k == "mode" {
                    *v = Json::Str("exact".into());
                }
            }
        }
        assert!(validate(&doc_with_row(SCHEMA, bad_exact)).is_err());
    }

    #[test]
    fn v1_documents_stay_valid_but_estimator_fields_are_rejected() {
        // A v1 row: no mode, no estimator fields — must validate.
        let v1_row = without(&mc_row(), &["mode", "samples", "seed", "ci_lo", "ci_hi"]);
        validate(&doc_with_row(SCHEMA_V1, v1_row.clone())).unwrap();
        // The same row under the v2 tag lacks `mode` — rejected.
        assert!(validate(&doc_with_row(SCHEMA, v1_row)).is_err());
        // A v1 document carrying v2 fields is rejected.
        let e = validate(&doc_with_row(SCHEMA_V1, mc_row()));
        assert!(e.unwrap_err().contains("v1"));
        // Unknown schema tags are rejected.
        assert!(validate(&doc_with_row("rsbt-bench-report/v3", mc_row())).is_err());
    }

    #[test]
    fn validate_flags_schema_violations() {
        let mut report = Report::new("demo", "t", "r");
        report.section("s").note("n");
        let good = report.to_json();
        validate(&good).unwrap();

        // Wrong schema tag.
        let mut bad = good.clone();
        if let Json::Obj(pairs) = &mut bad {
            pairs[0].1 = Json::Str("something-else".into());
        }
        assert!(validate(&bad).is_err());

        // Ragged table row.
        let mut report = Report::new("demo", "t", "r");
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
        // Table pads short rows itself, so build the raggedness at the
        // JSON level instead.
        report.section("s").table(t);
        let mut doc = report.to_json();
        if let Some(Json::Arr(sections)) = doc.get("sections").cloned() {
            let mut s0 = sections[0].clone();
            if let Json::Obj(pairs) = &mut s0 {
                for (k, v) in pairs.iter_mut() {
                    if k == "tables" {
                        if let Json::Arr(tables) = v {
                            if let Json::Obj(tp) = &mut tables[0] {
                                for (tk, tv) in tp.iter_mut() {
                                    if tk == "rows" {
                                        *tv = Json::Arr(vec![Json::Arr(vec![Json::Str(
                                            "ragged".into(),
                                        )])]);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            if let Json::Obj(pairs) = &mut doc {
                for (k, v) in pairs.iter_mut() {
                    if k == "sections" {
                        *v = Json::Arr(vec![s0.clone()]);
                    }
                }
            }
        }
        assert!(validate(&doc).is_err(), "ragged row must fail validation");
    }
}
