//! Shared helpers for the experiment binaries.
//!
//! Every figure and theorem of the paper has a binary under `src/bin/`
//! (run with `cargo run -p rsbt-bench --bin <exp> --release`); the
//! performance benches live under `benches/`. See the workspace `README.md`
//! for the full experiment list and `DESIGN.md` §4 for the ablations the
//! benches measure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

/// A minimal fixed-width text table for experiment output.
///
/// # Example
///
/// ```
/// use rsbt_bench::Table;
///
/// let mut t = Table::new(vec!["config", "p(3)"]);
/// t.row(vec!["[1,2]".to_string(), "0.875".to_string()]);
/// let s = t.to_string();
/// assert!(s.contains("config"));
/// assert!(s.contains("0.875"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a probability with fixed precision for table cells.
pub fn fmt_p(p: f64) -> String {
    format!("{p:.6}")
}

/// Formats a group-size profile like `[1, 2, 3]` compactly.
pub fn fmt_sizes(sizes: &[usize]) -> String {
    let inner: Vec<String> = sizes.iter().map(usize::to_string).collect();
    format!("[{}]", inner.join(","))
}

/// Prints an experiment banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("=== {title} ===");
    println!("paper reference: {paper_ref}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        t.row(vec!["y".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    "));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_p(0.5), "0.500000");
        assert_eq!(fmt_sizes(&[1, 2]), "[1,2]");
    }
}
