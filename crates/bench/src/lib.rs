//! Shared sweep engine and helpers for the experiment binaries.
//!
//! Every figure and theorem of the paper has a binary under `src/bin/`
//! (run with `cargo run -p rsbt-bench --bin <exp> --release`); the
//! performance benches live under `benches/`. See the workspace `README.md`
//! for the full experiment list and `DESIGN.md` §4 for the ablations the
//! benches measure.
//!
//! All binaries are thin declarative wrappers over one harness:
//! [`run_experiment`] parses the shared CLI (`--json <path>`,
//! `--threads <n>`), hands the bin a [`SweepEngine`] (memoizing
//! probability cache plus parallel fan-out) and a [`Report`] (text
//! rendering plus `rsbt-bench-report/v1` JSON), prints the text form, and
//! writes the schema-validated JSON when requested.

#![deny(deprecated)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;
pub mod report;
pub mod sweep;

use std::fmt::Display;
use std::path::PathBuf;
use std::process::ExitCode;

pub use crate::proto::{counters_table, ProtoMc, ProtoMcPoint};
pub use crate::report::{Json, Report, Section, SCHEMA, SCHEMA_V1};
pub use crate::sweep::{
    default_threads, standard_table, McRow, McSweep, ModelSpec, RowMode, SweepEngine, SweepRow,
    SweepSpec, TaskSpec,
};

/// A minimal fixed-width text table for experiment output.
///
/// # Example
///
/// ```
/// use rsbt_bench::Table;
///
/// let mut t = Table::new(vec!["config", "p(3)"]);
/// t.row(vec!["[1,2]".to_string(), "0.875".to_string()]);
/// let s = t.to_string();
/// assert!(s.contains("config"));
/// assert!(s.contains("0.875"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column headers (used by the JSON report serializer).
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows (used by the JSON report serializer).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a probability with fixed precision for table cells.
pub fn fmt_p(p: f64) -> String {
    format!("{p:.6}")
}

/// Formats a group-size profile like `[1, 2, 3]` compactly.
pub fn fmt_sizes(sizes: &[usize]) -> String {
    let inner: Vec<String> = sizes.iter().map(usize::to_string).collect();
    format!("[{}]", inner.join(","))
}

/// Prints an experiment banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("=== {title} ===");
    println!("paper reference: {paper_ref}");
    println!();
}

/// Parsed command-line options shared by every `exp_*` binary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExpArgs {
    /// Write the machine-readable report here (`--json <path>`).
    pub json: Option<PathBuf>,
    /// Worker-thread override (`--threads <n>`).
    pub threads: Option<usize>,
    /// Monte-Carlo sample-count override (`--samples <n>`).
    pub samples: Option<usize>,
    /// Monte-Carlo base-seed override (`--seed <hex>`).
    pub seed: Option<u64>,
    /// `--help` was requested.
    pub help: bool,
}

/// Parses the shared experiment CLI from an argument iterator (exposed for
/// tests; binaries go through [`run_experiment`]).
///
/// # Errors
///
/// A usage message on unknown flags or malformed values.
pub fn parse_args<I: Iterator<Item = String>>(args: I) -> Result<ExpArgs, String> {
    let mut out = ExpArgs::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                let path = args.next().ok_or("--json needs a file path")?;
                out.json = Some(PathBuf::from(path));
            }
            "--threads" => {
                let n = args.next().ok_or("--threads needs a number")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--threads needs a number, got '{n}'"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                out.threads = Some(n);
            }
            "--samples" => {
                let n = args.next().ok_or("--samples needs a number")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--samples needs a number, got '{n}'"))?;
                if n == 0 {
                    return Err("--samples must be at least 1".into());
                }
                out.samples = Some(n);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a hex value")?;
                let digits = v.strip_prefix("0x").unwrap_or(&v);
                let seed = u64::from_str_radix(digits, 16)
                    .map_err(|_| format!("--seed needs a hex u64, got '{v}'"))?;
                out.seed = Some(seed);
            }
            "--help" | "-h" => out.help = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(out)
}

/// The common entry point of every experiment binary: parses the shared
/// CLI, runs `body` with a [`SweepEngine`] and an empty [`Report`], prints
/// the report's text rendering, and — with `--json <path>` — writes the
/// schema-validated `rsbt-bench-report/v1` document.
pub fn run_experiment<F>(experiment: &str, title: &str, paper_ref: &str, body: F) -> ExitCode
where
    F: FnOnce(&mut SweepEngine, &mut Report),
{
    run_experiment_from(std::env::args().skip(1), experiment, title, paper_ref, body)
}

/// [`run_experiment`] over an explicit argument iterator: binaries with
/// extra flags of their own (e.g. `exp_proto_net --kill`) extract those
/// first and hand the remainder here for the shared CLI.
pub fn run_experiment_from<I, F>(
    raw_args: I,
    experiment: &str,
    title: &str,
    paper_ref: &str,
    body: F,
) -> ExitCode
where
    I: Iterator<Item = String>,
    F: FnOnce(&mut SweepEngine, &mut Report),
{
    let args = match parse_args(raw_args) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: {experiment} [--json <path>] [--threads <n>] [--samples <n>] [--seed <hex>]"
            );
            return ExitCode::from(2);
        }
    };
    if args.help {
        println!("{experiment} — {title}");
        println!(
            "usage: {experiment} [--json <path>] [--threads <n>] [--samples <n>] [--seed <hex>]"
        );
        println!("  --json <path>   also write the {SCHEMA} JSON report");
        println!("  --threads <n>   sweep worker threads (default: min(cores, 8))");
        println!("  --samples <n>   override the Monte-Carlo sample count per point");
        println!("  --seed <hex>    override the Monte-Carlo base seed (hex, 0x optional)");
        return ExitCode::SUCCESS;
    }
    let threads = args.threads.unwrap_or_else(default_threads);
    let mut engine = SweepEngine::new(threads);
    engine.set_mc_overrides(args.samples, args.seed);
    let mut rep = Report::new(experiment, title, paper_ref);
    rep.set_threads(threads);
    let start = std::time::Instant::now();
    body(&mut engine, &mut rep);
    rep.set_elapsed_ms(start.elapsed().as_millis() as u64);
    let (hits, misses, points) = engine.cache_stats();
    rep.set_cache_stats(hits, misses, points);
    print!("{}", rep.render_text());
    if let Some(path) = &args.json {
        if let Err(e) = rep.write_json(path) {
            eprintln!("error: failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote JSON report to {}", path.display());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        t.row(vec!["y".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    "));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_p(0.5), "0.500000");
        assert_eq!(fmt_sizes(&[1, 2]), "[1,2]");
    }

    fn args(list: &[&str]) -> Result<ExpArgs, String> {
        parse_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn cli_parsing() {
        assert_eq!(args(&[]), Ok(ExpArgs::default()));
        let parsed = args(&["--json", "out.json", "--threads", "3"]).unwrap();
        assert_eq!(parsed.json, Some(PathBuf::from("out.json")));
        assert_eq!(parsed.threads, Some(3));
        assert!(args(&["--help"]).unwrap().help);
        assert!(args(&["--threads"]).is_err());
        assert!(args(&["--threads", "0"]).is_err());
        assert!(args(&["--threads", "x"]).is_err());
        assert!(args(&["--nope"]).is_err());
    }

    #[test]
    fn mc_override_parsing() {
        let parsed = args(&["--samples", "5000", "--seed", "0xDEADbeef"]).unwrap();
        assert_eq!(parsed.samples, Some(5000));
        assert_eq!(parsed.seed, Some(0xdead_beef));
        assert_eq!(args(&["--seed", "7e5"]).unwrap().seed, Some(0x7e5));
        assert!(args(&["--samples"]).is_err());
        assert!(args(&["--samples", "0"]).is_err());
        assert!(args(&["--samples", "x"]).is_err());
        assert!(args(&["--seed"]).is_err());
        assert!(args(&["--seed", "zz"]).is_err());
    }
}
