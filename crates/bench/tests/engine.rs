//! Integration tests for the sweep engine: the parallel, cached,
//! incremental path must be bit-identical to the serial
//! `probability::exact` reference, independent of thread count and of the
//! order points were first computed in; and the JSON report layer must
//! round-trip through its own schema.

use rsbt_bench::{report, Json, ModelSpec, Report, SweepEngine, SweepSpec, TaskSpec};
use rsbt_core::{eventual, probability};
use rsbt_random::Assignment;
use rsbt_sim::Model;
use rsbt_tasks::{KLeaderElection, LeaderElection, WeakSymmetryBreaking};

// Kept deliberately small: these run in the debug profile under tier-1.
fn le_spec() -> SweepSpec {
    SweepSpec::new()
        .task(TaskSpec::fixed(LeaderElection))
        .nodes(1..=5)
        .t_cap(3)
        .bit_budget(12)
        .predicate(eventual::blackboard_eventually_solvable)
}

fn mp_spec() -> SweepSpec {
    SweepSpec::new()
        .model(ModelSpec::adversarial_ports())
        .task(TaskSpec::fixed(LeaderElection))
        .nodes(2..=4)
        .t_cap(2)
        .bit_budget(8)
        .predicate(eventual::message_passing_worst_case_solvable)
}

/// The acceptance-criterion test: the parallel engine's numbers are
/// bit-identical to the serial `probability::exact` path, for every
/// worker count, on both communication models.
#[test]
fn parallel_sweep_bit_identical_to_serial_exact() {
    for spec in [le_spec(), mp_spec()] {
        let reference = SweepEngine::new(1).sweep(&spec);
        for threads in [2usize, 4] {
            let rows = SweepEngine::new(threads).sweep(&spec);
            assert_eq!(rows.len(), reference.len(), "threads={threads}");
            for (row, reference_row) in rows.iter().zip(&reference) {
                assert_eq!(row, reference_row, "threads={threads}");
            }
        }
        // Serial ground truth: recompute every point with the plain
        // single-threaded enumerator and compare exact bit patterns.
        for row in &reference {
            let alpha = Assignment::from_group_sizes(&row.sizes).unwrap();
            let model = match row.model.as_str() {
                "blackboard" => Model::Blackboard,
                "adversarial ports" => Model::MessagePassing(rsbt_sim::PortNumbering::adversarial(
                    alpha.n(),
                    alpha.gcd_of_group_sizes() as usize,
                )),
                other => panic!("unexpected model label {other}"),
            };
            for (i, &p) in row.series.iter().enumerate() {
                let serial = probability::exact(&model, &LeaderElection, &alpha, i + 1);
                assert_eq!(
                    p.to_bits(),
                    serial.to_bits(),
                    "sizes {:?} t {}",
                    row.sizes,
                    i + 1
                );
            }
        }
    }
}

/// Cache warm-up order must not change results: an engine that computed
/// other sweeps first (overlapping points, different chunking) returns the
/// same rows as a cold engine.
#[test]
fn sweep_results_independent_of_computation_order() {
    let cold = SweepEngine::new(3).sweep(&le_spec());

    let mut warm_engine = SweepEngine::new(3);
    // Warm the cache through unrelated entry points, in a different order:
    // a 2-LE sweep (different task), a WSB sweep, then scattered one-off
    // exact() calls overlapping the LE spec's points.
    warm_engine.sweep(
        &SweepSpec::new()
            .task(TaskSpec::fixed(KLeaderElection::new(2)))
            .nodes(2..=4)
            .bit_budget(12),
    );
    warm_engine.sweep(
        &SweepSpec::new()
            .task(TaskSpec::fixed(WeakSymmetryBreaking))
            .nodes(2..=4)
            .bit_budget(12),
    );
    for sizes in [vec![2usize, 2, 1], vec![1usize, 1], vec![4usize, 1]] {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        warm_engine.exact(&Model::Blackboard, &LeaderElection, &alpha, 2);
    }
    let warm = warm_engine.sweep(&le_spec());
    assert_eq!(cold, warm);
}

/// `exact()` (serial cached) and `sweep()` (parallel) must agree on shared
/// points — the cache would otherwise poison one path with the other's
/// values if they ever diverged.
#[test]
fn serial_and_sweep_paths_share_one_truth() {
    let mut engine = SweepEngine::new(4);
    let rows = engine.sweep(&le_spec());
    for row in &rows {
        let alpha = Assignment::from_group_sizes(&row.sizes).unwrap();
        for (i, &p) in row.series.iter().enumerate() {
            let via_exact = engine.exact(&Model::Blackboard, &LeaderElection, &alpha, i + 1);
            assert_eq!(p.to_bits(), via_exact.to_bits());
        }
    }
}

/// A realistic report (sweep rows + tables + notes) validates against the
/// v1 schema and survives an emit → parse round trip unchanged.
#[test]
fn report_with_sweep_rows_round_trips_through_schema() {
    let mut engine = SweepEngine::new(2);
    let rows = engine.sweep(&le_spec());
    let mut rep = Report::new("engine-test", "Engine test", "tests/engine.rs");
    rep.set_threads(engine.threads());
    rep.set_elapsed_ms(1);
    let (hits, misses, points) = engine.cache_stats();
    rep.set_cache_stats(hits, misses, points);
    let mut table = rsbt_bench::Table::new(vec!["k", "v"]);
    table.row(vec!["points".into(), points.to_string()]);
    rep.section("sweep")
        .sweep("theorem 4.1", rows)
        .table(table)
        .note("done");

    let doc = rep.to_json();
    report::validate(&doc).expect("schema-valid");
    let text = doc.to_pretty_string();
    let parsed = Json::parse(&text).expect("parses");
    assert_eq!(parsed, doc, "emit → parse must be the identity");
    report::validate(&parsed).expect("still valid after round trip");
}

/// The probability series in a report survive the JSON round trip at full
/// f64 precision (shortest round-trip float formatting).
#[test]
fn json_floats_preserve_full_precision() {
    let mut engine = SweepEngine::new(1);
    let rows = engine.sweep(&le_spec());
    let originals: Vec<Vec<f64>> = rows.iter().map(|r| r.series.clone()).collect();
    let mut rep = Report::new("prec", "t", "r");
    rep.section("s").sweep("rows", rows);
    let text = rep.to_json().to_pretty_string();
    let parsed = Json::parse(&text).unwrap();
    let sections = parsed.get("sections").and_then(Json::as_arr).unwrap();
    let sweeps = sections[0].get("sweeps").and_then(Json::as_arr).unwrap();
    let rows_json = sweeps[0].get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows_json.len(), originals.len());
    for (row, series) in rows_json.iter().zip(&originals) {
        let parsed_series = row.get("series").and_then(Json::as_arr).unwrap();
        assert_eq!(parsed_series.len(), series.len());
        for (value, &expect) in parsed_series.iter().zip(series) {
            match value {
                Json::Num(v) => assert_eq!(v.to_bits(), expect.to_bits()),
                other => panic!("series value must be a float, got {other:?}"),
            }
        }
    }
}

/// End-to-end estimator mode: an MC-bearing sweep produces a report that
/// validates against the v2 schema, round-trips, and is bit-identical
/// regardless of the engine's worker count — WSB and k-LE beyond the
/// exact budget included.
#[test]
fn mc_sweep_report_round_trips_and_is_deterministic() {
    let spec = || {
        SweepSpec::new()
            .task(TaskSpec::fixed(WeakSymmetryBreaking))
            .task(TaskSpec::fixed(KLeaderElection::new(2)))
            .nodes(4..=4)
            .t_cap(4)
            .bit_budget(6)
            .mc(rsbt_bench::McSweep {
                samples: 1_000,
                seed: 11,
            })
    };
    let mut engine = SweepEngine::new(2);
    let rows = engine.sweep(&spec());
    assert!(
        rows.iter().any(|r| r.mode == rsbt_bench::RowMode::Mc),
        "budget 6 must push some rows to the estimator"
    );
    let again = SweepEngine::new(4).sweep(&spec());
    assert_eq!(rows, again, "estimated rows must be thread-invariant");
    // Estimator mode runs bit-sliced: built-in tasks compile lane plans,
    // so no lane peels to the scalar path and the dense fallback (and the
    // scalar closed form) never run.
    let stats = engine.mc_stats();
    assert!(stats.lane_words > 0);
    assert_eq!(stats.peeled_lanes, 0);
    assert_eq!(stats.dense_scan_verdicts, 0);

    let mut rep = Report::new("mc-test", "MC engine test", "tests/engine.rs");
    rep.set_threads(engine.threads());
    rep.section("mc").sweep("estimated rows", rows);
    let doc = rep.to_json();
    report::validate(&doc).expect("v2 schema-valid");
    let parsed = Json::parse(&doc.to_pretty_string()).expect("parses");
    assert_eq!(parsed, doc, "emit → parse must be the identity");
}
