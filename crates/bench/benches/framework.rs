//! Criterion benches for the topological framework: complex operations,
//! knowledge interning, projections, and the solvability checkers
//! (including the fast-vs-generic ablation called out in DESIGN.md §4).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rsbt_complex::{homology, search, Complex, ProcessName, Vertex};
use rsbt_core::{consistency, probability, protocol_complex, solvability};
use rsbt_random::{Assignment, Realization};
use rsbt_sim::{Execution, KnowledgeArena, Model};
use rsbt_tasks::{projection, LeaderElection, Task};

fn bench_complex_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("complex");
    for n in [4usize, 6, 8] {
        let ole = LeaderElection.output_complex(n);
        group.bench_with_input(BenchmarkId::new("build_ole", n), &n, |b, &n| {
            b.iter(|| LeaderElection.output_complex(black_box(n)))
        });
        group.bench_with_input(BenchmarkId::new("is_symmetric", n), &ole, |b, ole| {
            b.iter(|| black_box(ole).is_symmetric())
        });
        group.bench_with_input(BenchmarkId::new("betti", n), &ole, |b, ole| {
            b.iter(|| homology::betti_numbers(black_box(ole)))
        });
        group.bench_with_input(BenchmarkId::new("project", n), &ole, |b, ole| {
            b.iter(|| projection::project_complex(black_box(ole)))
        });
    }
    group.finish();
}

fn bench_knowledge(c: &mut Criterion) {
    let mut group = c.benchmark_group("knowledge");
    // Ablation (DESIGN.md §4.1): one long execution with a shared arena
    // (interning) vs a fresh arena per run.
    let alpha = Assignment::private(6);
    let mut rng = rand::rngs::mock::StepRng::new(99, 0x9e37_79b9_97f4_a7c1);
    let rho = Realization::sample(&alpha, 16, &mut rng);
    group.bench_function("run_t16_n6_fresh_arena", |b| {
        b.iter(|| {
            let mut arena = KnowledgeArena::new();
            Execution::run(&Model::Blackboard, black_box(&rho), &mut arena)
        })
    });
    let mut shared = KnowledgeArena::new();
    group.bench_function("run_t16_n6_shared_arena", |b| {
        b.iter(|| Execution::run(&Model::Blackboard, black_box(&rho), &mut shared))
    });
    group.finish();
}

fn bench_solvability(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvability");
    let le = LeaderElection;
    let alpha = Assignment::from_group_sizes(&[1, 2, 2]).unwrap();
    let mut rng = rand::rngs::mock::StepRng::new(3, 0x9e37_79b9_97f4_a7c1);
    let rho = Realization::sample(&alpha, 6, &mut rng);
    // Ablation (DESIGN.md §4.2): fast combinatorial path vs the generic
    // simplicial-map search of Definition 3.4.
    group.bench_function("fast_path", |b| {
        let mut arena = KnowledgeArena::new();
        b.iter(|| solvability::solves(&Model::Blackboard, black_box(&rho), &le, &mut arena))
    });
    group.bench_function("generic_search", |b| {
        let mut arena = KnowledgeArena::new();
        b.iter(|| {
            solvability::solves_via_projection(&Model::Blackboard, black_box(&rho), &le, &mut arena)
        })
    });
    group.bench_function("definition_3_1_search", |b| {
        let mut arena = KnowledgeArena::new();
        b.iter(|| {
            solvability::solves_via_definition_3_1(
                &Model::Blackboard,
                black_box(&rho),
                &le,
                &mut arena,
            )
        })
    });
    group.finish();
}

fn bench_probability(c: &mut Criterion) {
    let mut group = c.benchmark_group("probability");
    group.sample_size(10);
    for (sizes, t) in [
        (vec![1usize, 2], 6usize),
        (vec![1, 2, 2], 4),
        (vec![2, 2], 6),
    ] {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        let id = format!("exact_{sizes:?}_t{t}");
        group.bench_function(&id, |b| {
            b.iter(|| probability::exact(&Model::Blackboard, &LeaderElection, &alpha, t))
        });
    }
    group.finish();
}

fn bench_complex_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    group.bench_function("protocol_complex_n3_t3", |b| {
        b.iter(|| {
            let mut arena = KnowledgeArena::new();
            protocol_complex::build(&Model::Blackboard, 3, 3, &mut arena)
        })
    });
    let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
    group.bench_function("pi_tilde_support_n4_t3", |b| {
        b.iter(|| {
            let mut arena = KnowledgeArena::new();
            consistency::pi_tilde_of_support(&Model::Blackboard, &alpha, 3, &mut arena)
        })
    });
    group.finish();
}

fn bench_map_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_search");
    // Search scaling on π̃-shaped complexes into π(τ).
    for n in [4usize, 6, 8] {
        let mut dom: Complex<u64> = Complex::new();
        dom.add_facet([Vertex::new(ProcessName::new(0), 10u64)])
            .unwrap();
        dom.add_facet((1..n as u32).map(|i| Vertex::new(ProcessName::new(i), 20u64)))
            .unwrap();
        let tau = LeaderElection::tau(n, 0);
        let cod = projection::project_facet(&tau);
        group.bench_with_input(BenchmarkId::new("name_preserving", n), &n, |b, _| {
            b.iter(|| search::exists_name_preserving_map(black_box(&dom), black_box(&cod)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_complex_ops,
    bench_knowledge,
    bench_solvability,
    bench_probability,
    bench_complex_construction,
    bench_map_search
);
criterion_main!(benches);
