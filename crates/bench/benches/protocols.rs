//! Criterion benches for the executable protocols: blackboard election,
//! Algorithm 1 matching, and Euclid leader election.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsbt_protocols::matching::CreateMatching;
use rsbt_protocols::{BlackboardLeaderElection, EuclidLeaderElection};
use rsbt_random::Assignment;
use rsbt_sim::runner::{run, run_nodes};
use rsbt_sim::{Model, PortNumbering};

fn bench_blackboard_le(c: &mut Criterion) {
    let mut group = c.benchmark_group("blackboard_le");
    for n in [2usize, 4, 8] {
        let alpha = Assignment::private(n);
        group.bench_with_input(BenchmarkId::new("private", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(n as u64);
            b.iter(|| {
                run(
                    &Model::Blackboard,
                    &alpha,
                    512,
                    BlackboardLeaderElection::new,
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for (a, b_size) in [(2usize, 3usize), (4, 8)] {
        let n = a + b_size;
        let id = format!("a{a}_b{b_size}");
        group.bench_function(&id, |bch| {
            let mut rng = StdRng::seed_from_u64(17);
            let ports = PortNumbering::random(n, &mut rng);
            let alpha = Assignment::private(n);
            bch.iter(|| {
                let nodes: Vec<CreateMatching> = (0..n)
                    .map(|i| {
                        if i < a {
                            let b_ports = (a..n).map(|t| ports.port_towards(i, t)).collect();
                            CreateMatching::new_a(a, b_ports)
                        } else {
                            CreateMatching::new_b(a)
                        }
                    })
                    .collect();
                run_nodes(
                    &Model::MessagePassing(ports.clone()),
                    &alpha,
                    5000,
                    nodes,
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

fn bench_euclid_le(c: &mut Criterion) {
    let mut group = c.benchmark_group("euclid_le");
    group.sample_size(20);
    for sizes in [vec![2usize, 3], vec![3, 4], vec![2, 2, 3]] {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        let n = alpha.n();
        let k = sizes.len();
        let id = format!("{sizes:?}");
        group.bench_function(&id, |b| {
            let mut rng = StdRng::seed_from_u64(23);
            b.iter(|| {
                let ports = PortNumbering::random(n, &mut rng);
                run(
                    &Model::MessagePassing(ports),
                    &alpha,
                    8000,
                    || EuclidLeaderElection::new(k),
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_blackboard_le,
    bench_matching,
    bench_euclid_le
);
criterion_main!(benches);
