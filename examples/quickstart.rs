//! Quickstart: the paper's framework in five minutes.
//!
//! Builds the leader-election output complex, inspects its consistency
//! projection (Figure 3), decides solvability of individual realizations
//! (Definition 3.4), computes `Pr[S(t) | α]`, and applies the Theorem 4.1
//! / 4.2 predicates.
//!
//! Run with `cargo run --example quickstart`.

use rsbt::core::{eventual, probability, solvability};
use rsbt::random::{Assignment, BitString, Realization};
use rsbt::sim::{KnowledgeArena, Model};
use rsbt::tasks::{projection, LeaderElection, Task};

fn main() {
    // 1. The task: leader election for three processes.
    let ole = LeaderElection.output_complex(3);
    println!(
        "O_LE(3): {} facets, symmetric = {}",
        ole.facet_count(),
        ole.is_symmetric()
    );

    // 2. Its consistency projection (Figure 3): the isolated vertex is the
    //    leader-to-be.
    let tau = LeaderElection::tau(3, 0);
    let pi_tau = projection::project_facet(&tau);
    println!("π(τ_0) facets:");
    for f in pi_tau.facets() {
        println!("  {f}");
    }

    // 3. A concrete realization: p0 drew 1, p1 and p2 drew 0. The
    //    consistency classes are {p0} and {p1, p2}; the singleton class
    //    means leader election is solved (Definition 3.4).
    let rho = Realization::new(vec![
        BitString::from_bits([true]),
        BitString::from_bits([false]),
        BitString::from_bits([false]),
    ])
    .unwrap();
    let mut arena = KnowledgeArena::new();
    let solved = solvability::solves(&Model::Blackboard, &rho, &LeaderElection, &mut arena);
    println!("\nrealization {rho} solves LE: {solved}");

    // 4. Probabilities: one singleton source among k = 2 sources gives
    //    p(t) = 1 − 2^{−t}. The whole series shares one knowledge arena.
    let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
    print!("\nPr[S(t) | α] for sizes [1,2]:");
    for p in probability::exact_series(&Model::Blackboard, &LeaderElection, &alpha, 5) {
        print!(" {p:.4}");
    }
    println!();

    // 5. Exact answers far past the old enumeration wall: k·t = 2·40
    //    means 2^80 realizations, but the quotient engine (DESIGN.md
    //    §4.10) folds them onto a handful of knowledge-equality states
    //    and answers exactly, in microseconds.
    let p = probability::exact(&Model::Blackboard, &LeaderElection, &alpha, 40);
    assert_eq!(p, 1.0 - 0.5f64.powi(40));
    println!("\nPr[S(40) | [1,2]] = {p} (exact; 2^80 realizations, quotiented)");

    // 6. The eventual-solvability predicates of Theorems 4.1 and 4.2.
    for sizes in [vec![1usize, 2], vec![2, 2], vec![2, 3]] {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        println!(
            "sizes {sizes:?}: blackboard solvable = {}, message-passing (worst-case ports) solvable = {}",
            eventual::blackboard_eventually_solvable(&alpha),
            eventual::message_passing_worst_case_solvable(&alpha),
        );
    }
}
