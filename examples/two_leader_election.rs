//! The paper's Section 1.2 challenge: characterize 2-leader election.
//!
//! "We encourage the reader to find a direct characterization in both the
//! blackboard and message-passing models, and then compare it with the
//! characterization obtained via the topological framework."
//!
//! This example does the comparison mechanically through the declarative
//! sweep engine: one `SweepSpec` sweeps every group-size profile up to
//! `n = 6`, and the answer is read off exact `Pr[S(t) | α]` series.
//!
//! Run with `cargo run --release --example two_leader_election`.

use rsbt::random::Assignment;
use rsbt::tasks::KLeaderElection;
use rsbt_bench::{standard_table, SweepEngine, SweepSpec, TaskSpec};

/// The conjecture to test: ∃ i: n_i = 2, or at least two singletons.
fn conjecture(alpha: &Assignment) -> bool {
    let sizes = alpha.group_sizes();
    sizes.contains(&2) || sizes.iter().filter(|&&s| s == 1).count() >= 2
}

fn main() {
    let mut engine = SweepEngine::new(rsbt_bench::default_threads());
    let spec = SweepSpec::new()
        .task(TaskSpec::fixed(KLeaderElection::new(2)))
        .nodes(2..=6)
        .t_cap(3)
        .bit_budget(16)
        .predicate(conjecture);
    let rows = engine.sweep(&spec);
    let all_match = rows.iter().all(|r| r.matches == Some(true));

    println!("blackboard 2-leader election, framework verdict per profile:\n");
    print!("{}", standard_table(&rows));
    println!();
    println!("Reading off the table, the framework-derived characterization is:");
    println!("  blackboard 2-LE is eventually solvable ⟺");
    println!("    some source feeds exactly 2 nodes, OR");
    println!("    at least two sources feed exactly 1 node each.");
    println!("every profile matches the conjecture: {all_match}");
    println!("(Compare with Theorem 4.1's ∃ n_i = 1 for ordinary leader election:");
    println!(" a class of exactly 2 consistent nodes can be jointly elected.)");
}
