//! The paper's Section 1.2 challenge: characterize 2-leader election.
//!
//! "We encourage the reader to find a direct characterization in both the
//! blackboard and message-passing models, and then compare it with the
//! characterization obtained via the topological framework."
//!
//! This example does the comparison mechanically: it sweeps every
//! group-size profile up to n = 6 and reads the answer off exact
//! `Pr[S(t) | α]` series computed by the framework.
//!
//! Run with `cargo run --release --example two_leader_election`.

use rsbt::core::{eventual, probability};
use rsbt::random::Assignment;
use rsbt::sim::Model;
use rsbt::tasks::KLeaderElection;

fn main() {
    let task = KLeaderElection::new(2);
    println!("blackboard 2-leader election, framework verdict per profile:\n");
    println!("{:<16} {:<10} verdict", "sizes", "p(3)");
    for n in 2..=6usize {
        for alpha in Assignment::enumerate_profiles(n) {
            let t_max = 3.min(16 / alpha.k().max(1)).max(1);
            let series = probability::exact_series(&Model::Blackboard, &task, &alpha, t_max);
            let verdict = match eventual::lemma_3_2_limit(&series) {
                eventual::LimitClass::One => "eventually solvable",
                _ => "impossible",
            };
            println!(
                "{:<16} {:<10.6} {}",
                format!("{:?}", alpha.group_sizes()),
                series.last().copied().unwrap_or(0.0),
                verdict
            );
        }
    }
    println!();
    println!("Reading off the table, the framework-derived characterization is:");
    println!("  blackboard 2-LE is eventually solvable ⟺");
    println!("    some source feeds exactly 2 nodes, OR");
    println!("    at least two sources feed exactly 1 node each.");
    println!("(Compare with Theorem 4.1's ∃ n_i = 1 for ordinary leader election:");
    println!(" a class of exactly 2 consistent nodes can be jointly elected.)");
}
