//! The paper's motivating scenario (Section 1.2): "independent" devices
//! whose randomness sources are secretly duplicated — as in the 250,000+
//! devices found sharing SSH keys [Mat15].
//!
//! A fleet of devices must elect a coordinator over an anonymous broadcast
//! channel (the blackboard model). We sample duplication patterns and show
//! election succeeding exactly when some device has a truly unique source
//! (Theorem 4.1).
//!
//! Run with `cargo run --example correlated_ssh_keys`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsbt::core::eventual;
use rsbt::protocols::{leader_count, BlackboardLeaderElection};
use rsbt::random::Assignment;
use rsbt::sim::{runner, Model};
use rsbt_bench::Table;

fn main() {
    let mut rng = StdRng::seed_from_u64(2015); // the year of [Mat15]
    let devices = 5;
    let mut table = Table::new(vec!["seed pool", "fleets elected", "provably stuck"]);

    for key_pool in [2usize, 3, 100] {
        let mut ok = 0;
        let mut impossible = 0;
        const FLEETS: usize = 50;
        for _ in 0..FLEETS {
            // Each device "generates" its key by picking a seed from the
            // pool; collisions are the [Mat15] duplications.
            let seeds: Vec<usize> = (0..devices).map(|_| rng.gen_range(0..key_pool)).collect();
            let alpha = Assignment::from_sources(seeds).unwrap();
            if !eventual::blackboard_eventually_solvable(&alpha) {
                impossible += 1;
                continue;
            }
            let out = runner::run(
                &Model::Blackboard,
                &alpha,
                256,
                BlackboardLeaderElection::new,
                &mut rng,
            );
            assert!(out.completed, "Theorem 4.1: a singleton source elects a.s.");
            assert_eq!(leader_count(&out.outputs), 1);
            ok += 1;
        }
        table.row(vec![
            key_pool.to_string(),
            format!("{ok}/{FLEETS}"),
            impossible.to_string(),
        ]);
    }
    println!("fleets of {devices} devices, seeds drawn from a shared firmware pool:\n");
    print!("{table}");
    println!();
    println!("Takeaway: duplicated randomness is not a performance problem but a");
    println!("*computability* problem — with no unique source, no algorithm can");
    println!("break the symmetry, no matter how long it runs (Theorem 4.1).");
}
