//! Theorem C.1: once a leader exists, every name-independent input-output
//! task is solvable — demonstrated with consensus and a histogram task.
//!
//! Run with `cargo run --example task_reduction`.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsbt::protocols::consensus::{check_consensus, consensus_node};
use rsbt::protocols::reduction::{TableSolver, ViaLeader};
use rsbt::protocols::BlackboardLeaderElection;
use rsbt::random::Assignment;
use rsbt::sim::{runner, Model};
use rsbt_bench::Table;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let alpha = Assignment::private(4);
    let mut table = Table::new(vec!["task", "inputs", "outputs", "rounds"]);

    // --- consensus ---
    let inputs = [12u64, 7, 31, 7];
    let nodes: Vec<_> = inputs
        .iter()
        .map(|&v| consensus_node(BlackboardLeaderElection::new(), v))
        .collect();
    let out = runner::run_nodes(&Model::Blackboard, &alpha, 512, nodes, &mut rng);
    let decision = check_consensus(&inputs, &out.outputs).expect("consensus holds");
    table.row(vec![
        "consensus(min)".into(),
        format!("{inputs:?}"),
        format!("everyone decided {decision}"),
        out.rounds.to_string(),
    ]);

    // --- a custom name-independent task: "am I holding a modal value?" ---
    // Output 1 iff your input is among the most frequent input values.
    let solver: TableSolver = Rc::new(|inputs: &[u64]| {
        let mut counts = std::collections::BTreeMap::new();
        for &v in inputs {
            *counts.entry(v).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        counts
            .into_iter()
            .map(|(v, c)| (v, u64::from(c == max)))
            .collect()
    });
    let inputs = [5u64, 9, 5, 9];
    let nodes: Vec<_> = inputs
        .iter()
        .map(|&v| ViaLeader::new(BlackboardLeaderElection::new(), v, solver.clone()))
        .collect();
    let out = runner::run_nodes(&Model::Blackboard, &alpha, 512, nodes, &mut rng);
    table.row(vec![
        "modal-value".into(),
        format!("{inputs:?}"),
        format!(
            "{:?}",
            out.outputs
                .iter()
                .map(|o| o.expect("decided"))
                .collect::<Vec<_>>()
        ),
        out.rounds.to_string(),
    ]);

    println!("name-independent tasks via the Appendix C reduction:\n");
    print!("{table}");
    println!();
    println!("Both tasks ran as: elect a leader → publish inputs → leader");
    println!("publishes an input→output table → everyone reads off its output.");
    println!("Name-independence is what makes the table well-defined (Appendix C).");
}
