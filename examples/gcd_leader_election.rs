//! Theorem 4.2 in action: message-passing leader election succeeds for
//! every port numbering exactly when `gcd(n_1, …, n_k) = 1`.
//!
//! Runs the Euclid-style election on correlated groups under random *and*
//! adversarial port numberings, and shows the gcd = 2 configuration
//! stalling under the adversarial numbering while gcd = 1 always elects.
//!
//! Run with `cargo run --release --example gcd_leader_election`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsbt::protocols::{leader_count, EuclidLeaderElection};
use rsbt::random::Assignment;
use rsbt::sim::{runner, Model, PortNumbering};
use rsbt_bench::{fmt_sizes, Table};

fn demo(sizes: &[usize], adversarial: bool, rng: &mut StdRng, table: &mut Table) {
    let alpha = Assignment::from_group_sizes(sizes).unwrap();
    let n = alpha.n();
    let g = alpha.gcd_of_group_sizes();
    let k = sizes.len();
    let ports = if adversarial {
        PortNumbering::adversarial(n, g as usize)
    } else {
        PortNumbering::random(n, rng)
    };
    let out = runner::run(
        &Model::MessagePassing(ports),
        &alpha,
        4000,
        || EuclidLeaderElection::new(k),
        rng,
    );
    let kind = if adversarial { "adversarial" } else { "random" };
    let outcome = if out.completed {
        format!(
            "elected {} leader in {} rounds",
            leader_count(&out.outputs),
            out.rounds
        )
    } else {
        format!("STUCK after {} rounds (as predicted)", out.rounds)
    };
    table.row(vec![
        fmt_sizes(sizes),
        g.to_string(),
        kind.to_string(),
        outcome,
    ]);
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut table = Table::new(vec!["sizes", "gcd", "ports", "outcome"]);

    for sizes in [vec![2usize, 3], vec![3, 4], vec![2, 2, 3]] {
        demo(&sizes, false, &mut rng, &mut table);
        demo(&sizes, true, &mut rng, &mut table);
    }
    for sizes in [vec![2usize, 2], vec![3, 3]] {
        demo(&sizes, true, &mut rng, &mut table);
    }
    demo(&[2, 2], false, &mut rng, &mut table);

    println!("Euclid-style message-passing leader election (Theorem 4.2):\n");
    print!("{table}");
    println!();
    println!("gcd = 1 rows: solvable for EVERY numbering (Theorem 4.2, 'if').");
    println!("gcd > 1 + adversarial: the numbering defeats every algorithm");
    println!("(Theorem 4.2, 'only if', via Lemma 4.3).");
    println!("gcd > 1 + random: the Euclid algorithm only exploits randomness");
    println!("groups, so it stalls here too — yet the topological framework shows");
    println!("a full-information protocol CAN often elect under random numberings");
    println!("(run exp_thm42's ablation): the impossibility is about the worst case.");
}
