//! Theorem 4.2 in action: message-passing leader election succeeds for
//! every port numbering exactly when `gcd(n_1, …, n_k) = 1`.
//!
//! Runs the Euclid-style election on correlated groups under random *and*
//! adversarial port numberings, and shows the gcd = 2 configuration
//! stalling under the adversarial numbering while gcd = 1 always elects.
//!
//! Run with `cargo run --release --example gcd_leader_election`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsbt::protocols::{leader_count, EuclidLeaderElection};
use rsbt::random::Assignment;
use rsbt::sim::{runner, Model, PortNumbering};

fn demo(sizes: &[usize], adversarial: bool, rng: &mut StdRng) {
    let alpha = Assignment::from_group_sizes(sizes).unwrap();
    let n = alpha.n();
    let g = alpha.gcd_of_group_sizes();
    let k = sizes.len();
    let ports = if adversarial {
        PortNumbering::adversarial(n, g as usize)
    } else {
        PortNumbering::random(n, rng)
    };
    let out = runner::run(
        &Model::MessagePassing(ports),
        &alpha,
        4000,
        || EuclidLeaderElection::new(k),
        rng,
    );
    let kind = if adversarial { "adversarial" } else { "random" };
    if out.completed {
        println!(
            "  sizes {sizes:?} (gcd {g}), {kind} ports: elected {} leader in {} rounds",
            leader_count(&out.outputs),
            out.rounds
        );
    } else {
        println!(
            "  sizes {sizes:?} (gcd {g}), {kind} ports: STUCK after {} rounds (as predicted)",
            out.rounds
        );
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    println!("gcd = 1: solvable for EVERY numbering (Theorem 4.2, 'if'):");
    for sizes in [vec![2usize, 3], vec![3, 4], vec![2, 2, 3]] {
        demo(&sizes, false, &mut rng);
        demo(&sizes, true, &mut rng);
    }

    println!("\ngcd > 1: the adversarial numbering defeats every algorithm");
    println!("(Theorem 4.2, 'only if', via Lemma 4.3):");
    for sizes in [vec![2usize, 2], vec![3, 3]] {
        demo(&sizes, true, &mut rng);
    }

    println!("\ngcd > 1 with *random* ports: the Euclid algorithm only exploits");
    println!("randomness groups, so it stalls here too —");
    demo(&[2, 2], false, &mut rng);
    println!("— yet the topological framework shows a full-information protocol");
    println!("CAN often elect under random numberings (run exp_thm42's ablation):");
    println!("Theorem 4.2's impossibility is specifically about the worst case.");
}
